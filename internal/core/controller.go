// Package core implements the Aire repair controller — the paper's primary
// contribution (§2.2, §3, §4).
//
// One Controller fronts each web service. During normal operation it
// intercepts every incoming request and outgoing call, assigns Aire
// identifiers, and maintains the repair log. When repair is requested —
// locally by an administrator, or remotely through the repair API of
// Table 1 — it runs Warp-style local repair, and queues repair messages for
// affected peers in per-service outgoing queues that survive peer downtime
// (asynchronous repair, §3). Access control for every repair message is
// delegated to the application through the authorize/notify/retry interface
// of Table 2 (§4).
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"aire/internal/audit"
	"aire/internal/deliver"
	"aire/internal/obs"
	"aire/internal/orm"
	"aire/internal/repairlog"
	"aire/internal/sched"
	"aire/internal/transport"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// App is the contract between Aire and the web service it protects
// (Table 2, plus route/model registration).
type App interface {
	// Name is the service's identity on the transport.
	Name() string
	// Register installs the application's models and routes on the service.
	Register(svc *web.Service)
	// Authorize decides whether a repair message is allowed (Table 2). The
	// application inspects the original and repaired payloads, the carrier
	// request (which holds the repair message's credentials), and a
	// read-only snapshot of the database at the original request's
	// execution time (§4). Authorize runs under the service lock so the
	// snapshots it reads are consistent even while repair or the pump is
	// active: it must be fast and must not call back into the service or
	// controller (no requests, no ApplyLocal) — read only from ac.
	Authorize(ac AuthzRequest) bool
}

// Notifier is optionally implemented by applications that want repair
// problem notifications pushed to them (Table 2's notify function);
// notifications are always also retrievable from Controller.Notifications.
type Notifier interface {
	Notify(n Notification)
}

// AuthzRequest carries everything an application's Authorize needs.
type AuthzRequest struct {
	// Kind is the repair operation: replace, delete, create, or
	// replace_response.
	Kind warp.OutKind
	// From is the transport-authenticated sender of the repair message.
	From string
	// OriginalFrom is the transport-authenticated sender of the original
	// request being repaired ("" for external clients or create).
	OriginalFrom string
	// Original is the request being repaired (zero for create).
	Original wire.Request
	// OriginalResp is its logged response (zero for create).
	OriginalResp wire.Response
	// Repaired is the corrected request (replace/create).
	Repaired wire.Request
	// RepairedResp is the corrected response (replace_response).
	RepairedResp wire.Response
	// Carrier is the repair API request itself; its headers and form carry
	// the repair credentials.
	Carrier wire.Request
	// Snapshot reads the database as of the original request's execution
	// time (§4: "read-only access to a snapshot of Aire's versioned
	// database at the time when the original request executed").
	Snapshot *orm.Tx
	// Now reads the database at the present time, for policies that check
	// currently-valid credentials (§7.2: expired tokens reject repair until
	// refreshed).
	Now *orm.Tx
}

// Notification reports a repair problem to the application (Table 2 notify).
type Notification struct {
	// MsgID identifies the queued repair message ("" for local notices).
	MsgID string
	// Kind classifies the problem: "unreachable", "rejected",
	// "unauthorized", "gone", "no-propagation", "compensation", or "leak".
	Kind string
	// Target is the peer service involved.
	Target string
	// RepairType is the repair operation involved.
	RepairType string
	// Detail is a human-readable description.
	Detail string
}

// Caller abstracts the transport (the in-memory bus or the HTTP adapter).
type Caller interface {
	Call(from, to string, req wire.Request) (wire.Response, error)
}

// Config tunes a controller.
type Config struct {
	// Engine configures the local repair engine.
	Engine warp.Config
	// MaxAttempts is how many failed delivery attempts a queued repair
	// message endures before it is parked and the application notified
	// (it can still be revived with Retry).
	MaxAttempts int
	// BatchIncoming, when true, queues incoming repair requests and applies
	// them together on ProcessIncoming (§3.2: "Aire also aggregates
	// incoming repair messages in an incoming queue"). When false, each
	// incoming repair is applied immediately.
	BatchIncoming bool
	// PumpWorkers bounds how many peers the background pump delivers to
	// concurrently (0 means a small default). Batches to the same peer are
	// never concurrent: per-peer FIFO order is preserved.
	PumpWorkers int
	// BatchSize caps how many consecutive messages to one peer a single
	// background pump pass carries (0 means a default). Flush is not
	// capped: one synchronous pass attempts every deliverable message.
	BatchSize int
	// BatchPolicy, when non-nil, sizes each peer's claim adaptively from
	// its backlog (see AdaptiveBatch) instead of the fixed BatchSize. The
	// background pump snapshots per-peer backlogs, asks the policy for a
	// limit per peer at a dedicated scheduler decision point
	// ("batch-policy"), and claims under those limits. Flush ignores it.
	BatchPolicy BatchPolicy
	// Admission bounds the share of pump capacity repair cascades may
	// consume so a repair storm cannot starve user-visible traffic (see
	// Admission). The zero value disables admission control. Flush ignores
	// it.
	Admission Admission
	// PumpInterval paces the background pump's periodic passes — the ones
	// that retry peers whose backoff delay has elapsed (0 means a default).
	PumpInterval time.Duration
	// Backoff, when enabled, retries unreachable peers on an exponential
	// schedule instead of parking their messages after MaxAttempts. The
	// zero value keeps the legacy park-and-Retry behavior. Backoff is a
	// background-pump feature: synchronous Flush/Settle passes also honor
	// the schedule, skipping peers whose retry window has not elapsed, so
	// serial deployments that enable Backoff must keep flushing past a
	// no-progress pass (or run StartPump) to drain those peers.
	Backoff Backoff
	// Clock supplies the time used for backoff scheduling (nil means
	// time.Now). Tests inject a fake clock for deterministic backoff.
	Clock func() time.Time
	// DisableDedupInbox turns off the peer-side exactly-once inbox
	// (internal/deliver): incoming repair deliveries are then handled
	// at-least-once, as the original protocol did. Exists so tests and the
	// simulator can demonstrate the stale-redelivery and duplicate-create
	// hazards the inbox closes.
	DisableDedupInbox bool
	// InboxCap bounds the dedup inbox's per-origin entry count (0 means
	// deliver.DefaultCap). Deliveries evicted from the bound stay covered
	// by a per-origin watermark.
	InboxCap int
	// Sched is the concurrency substrate the background pump runs on (nil
	// means real goroutines — sched.Goroutines()). The deterministic
	// simulator injects internal/dsched here so pump workers, backoff
	// sleeps, and shutdown interleave under a seeded schedule.
	Sched sched.Scheduler
	// FaultUngatedReconcile (fault injection, tests only): reconcile
	// delivery outcomes without the per-message generation gate,
	// reintroducing the pre-PR-1 race where a message superseded while a
	// delivery of its old content was in flight is reconciled as if the
	// old content were still the queued one — the superseding repair is
	// silently dropped. Exists so the deterministic scheduler can prove it
	// rediscovers the historical bug; never set it outside tests.
	FaultUngatedReconcile bool
	// Obs, when non-nil, attaches the repair-plane observability registry
	// (internal/obs): the controller publishes counters, latency
	// histograms, and wave-trace spans into it. Leave nil to disable:
	// every instrumented site then reduces to a nil check with zero
	// allocations (BenchmarkObsOverhead), and — because wave-trace
	// context is protocol state minted and persisted unconditionally —
	// an obs-on run takes byte-identical schedules to an obs-off run.
	Obs *obs.Registry
	// FaultSplitRepairCommit (fault injection, tests only): commit a
	// repair's WAL entry without its queue effects and inbox outcome,
	// reintroducing the historical split-entry windows — a crash after the
	// repair entry but before the standalone q-set/in-commit entries
	// recovers a repaired service whose downstream messages were lost, or
	// (crashing between the queue effects and the inbox commit) re-applies
	// the redelivered repair and double-queues its downstream messages.
	// Exists so the double-queue regression test can prove the atomic
	// entry closes the window; never set it outside tests.
	FaultSplitRepairCommit bool
	// VersionVectors enables the anti-entropy sequence-announcement layer
	// (vectors.go): every stamped repair-plane carrier piggybacks the
	// sender's acked prefix and frontier for the destination peer
	// (wire.HdrAckedSeq / wire.HdrFrontierSeq), the dedup inbox switches to
	// exact vector-mode classification and compacts acked prefixes, and
	// sequence gaps are NACKed back to the sender for immediate re-offer
	// instead of waiting out delivery backoff. Default off: with vectors
	// disabled no new headers are stamped, no new yield points fire, and
	// existing scheduler digests stay byte-identical.
	VersionVectors bool
	// Topology, when non-nil, is the shared key→shard map for every
	// service in the deployment (shard.go). A controller with a topology
	// resolves repair carriers bound for a sharded peer to the owning
	// shard's transport name (peerDest), stamps wire.HdrShard, and — when
	// it is itself a shard — refuses carriers addressed to a sibling.
	// Must be set before recovery so WAL replay rebuilds version vectors
	// under the same per-(peer, shard) keys the live path uses. Default
	// nil: no shard resolution, no new headers, no new yield points, and
	// existing scheduler digests stay byte-identical.
	Topology *ShardTopology
	// StrictIndexes verifies vdb/repairlog secondary-index coherence at
	// the start of every repair wave (the carried ROADMAP
	// coherence-at-repair-start debt): a corrupted or stale index fails
	// the repair loudly instead of silently walking the wrong slice.
	// Pure reads under Svc.Mu — no yields, no IDs, no rng — so scheduler
	// digests are unchanged either way. Default off; the simulation
	// harness turns it on.
	StrictIndexes bool
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{Engine: warp.DefaultConfig(), MaxAttempts: 3}
}

// PendingMsg is a repair message in the outgoing queue.
type PendingMsg struct {
	// MsgID identifies the message for notify/retry.
	MsgID string
	// DeliveryID is the message's durable delivery identity, stamped on
	// every delivery attempt as wire.HdrDeliveryID so the peer's dedup
	// inbox recognizes re-deliveries. It is stable across attempts and
	// content revisions, persisted with the queue, and minted from the
	// service's persisted ID counter so it survives crash-restart without
	// colliding.
	DeliveryID string `json:"delivery_id,omitempty"`
	// Msg is the repair operation to deliver.
	Msg warp.OutMsg
	// Attempts counts failed delivery attempts.
	Attempts int
	// Held marks a message parked after repeated failure or an
	// authorization error; only Retry revives it.
	Held bool
	// LastErr describes the most recent failure.
	LastErr string
	// Gen counts content changes (queue collapsing, Retry). A delivery in
	// flight reconciles only against the generation it claimed, so a
	// message superseded mid-flight stays queued for another pass; the
	// claimed generation is also stamped on the wire (wire.HdrGeneration)
	// so the peer can discard a delayed copy of superseded content. It is
	// persisted so generations stay monotonic across crash-restart.
	Gen uint64 `json:"gen,omitempty"`
	// TraceID / TraceHop are the repair-wave trace context this message
	// carries (wire.HdrTraceID / wire.HdrTraceHop): the wave minted at
	// the cascade's origin and the hop depth this message's delivery
	// represents (origin repair = hop 0, the messages it emits = hop 1).
	// Persisted with the queue so a wave's shape survives crash-recovery.
	// Observability-only: never consulted for repair semantics or dedup.
	TraceID  string `json:"trace_id,omitempty"`
	TraceHop int    `json:"trace_hop,omitempty"`
	// token is the response-repair token minted for a replace_response
	// (reused across delivery attempts).
	token string
	// nacked records that this attempt's response carried a gap NACK
	// (wire.HdrNackSeq). Set only on a delivery pass's private snapshot,
	// read at reconcile; never persisted.
	nacked bool
	// inflight marks a message claimed by a delivery pass; guarded by qmu.
	inflight bool
	// queued marks a live queue entry (cleared on delivery and Drop), so
	// reconciliation checks membership in O(1); guarded by qmu.
	queued bool
}

// Stats counts controller activity.
type Stats struct {
	Requests      int64
	RepairsRun    int64
	MsgsQueued    int64
	MsgsDelivered int64
	MsgsFailed    int64
	// DupDeliveries counts incoming repair deliveries re-acknowledged
	// without re-applying (the dedup inbox recognized the delivery).
	DupDeliveries int64
	// StaleDeliveries counts incoming deliveries acknowledged and
	// discarded because they carried a superseded content generation.
	StaleDeliveries int64
	// InboxCommits counts exactly-once inbox outcomes committed for
	// applied incoming deliveries. Unlike MsgsDelivered/MsgsFailed it
	// counts work on the receive side, so a harness quiescing on progress
	// sees a fault class that applies repairs without producing local
	// delivery outcomes (the carried ROADMAP quiesce-widening debt).
	InboxCommits int64
	// BatchApplies counts ProcessIncoming batches applied (batch-incoming
	// mode): receive-side progress that precedes any delivery outcome.
	BatchApplies int64
}

type tokenEntry struct {
	audience string // service allowed to fetch the payload
	payload  []byte
}

// Controller is the Aire runtime for one service.
type Controller struct {
	Svc     *web.Service
	AppImpl App
	Net     Caller
	Cfg     Config
	Engine  *warp.Engine

	qmu    sync.Mutex
	qcond  *sync.Cond // broadcast whenever qlive drops to 0 (WaitQueueEmpty)
	queue  []*PendingMsg
	qlive  int // entries with queued=true (the queue slice may briefly hold dead ones)
	nextID int
	peers  map[string]*peerState // per-peer delivery health, guarded by qmu
	// vectors is the sender-side version-vector state per destination peer
	// (vectors.go); nil unless Cfg.VersionVectors. Guarded by qmu.
	vectors map[string]*peerVector
	// liveCalls counts in-flight live (non-repair) outbound calls per peer;
	// admission control trickles repair delivery to peers that are actively
	// serving the live workload. Guarded by qmu.
	liveCalls map[string]int
	// cascadeInflight counts claimed-but-unreconciled cascade-class batches;
	// admission's MaxShare budget is enforced against it at claim time.
	// Guarded by qmu.
	cascadeInflight int

	// sd is the resolved concurrency substrate (Cfg.Sched, or production
	// goroutines); immutable after NewController.
	sd sched.Scheduler

	// topo is the resolved shard topology (Cfg.Topology); nil means no
	// shard resolution anywhere on the delivery path. Immutable after
	// NewController.
	topo *ShardTopology

	// met caches the obs handles (core/obs.go); immutable after
	// NewController. All-nil when Cfg.Obs is nil.
	met ctrlMetrics

	pumpMu     sync.Mutex
	pumpCancel context.CancelFunc
	pumpDone   chan struct{}
	pumpPacer  sched.Pacer // active pump's pacer; wakePump's target

	tokmu     sync.Mutex
	tokens    map[string]tokenEntry
	mailboxes map[string][]string // polling client -> undelivered tokens

	// dedup is the peer-side exactly-once inbox for incoming repair
	// deliveries (internal/deliver); gated by Cfg.DisableDedupInbox.
	dedup *deliver.Inbox

	inmu  sync.Mutex
	inbox []queuedAction
	inseq uint64 // accept sequence of the newest inbox entry ever; guarded by inmu

	nmu           sync.Mutex
	notifications []Notification

	smu   sync.Mutex
	stats Stats

	// walst mirrors committed mutations into a write-ahead log (wal.go).
	walst walState

	events eventHub

	rmu            sync.Mutex
	repairedReqs   int
	repairedOps    int
	lastTotalReqs  int
	lastTotalOps   int
	repairDuration time.Duration
}

// NewController builds the Aire runtime for app, delivering over net.
func NewController(app App, net Caller, cfg Config) *Controller {
	svc := web.NewService(app.Name())
	app.Register(svc)
	c := &Controller{
		Svc:       svc,
		AppImpl:   app,
		Net:       net,
		Cfg:       cfg,
		Engine:    &warp.Engine{Svc: svc, Cfg: cfg.Engine},
		tokens:    make(map[string]tokenEntry),
		mailboxes: make(map[string][]string),
		dedup:     deliver.NewInbox(cfg.InboxCap),
		peers:     make(map[string]*peerState),
		liveCalls: make(map[string]int),
		sd:        cfg.Sched,
		topo:      cfg.Topology,
	}
	if c.sd == nil {
		c.sd = sched.Goroutines()
	}
	if cfg.VersionVectors {
		c.vectors = make(map[string]*peerVector)
		c.dedup.EnableVectors()
	}
	c.met = newCtrlMetrics(cfg.Obs, app.Name())
	c.qcond = sync.NewCond(&c.qmu)
	return c
}

// Obs returns the controller's observability registry (nil when disabled).
// Storage-layer helpers (internal/persist) use it to wire WAL and
// checkpoint latency into the same registry.
func (c *Controller) Obs() *obs.Registry { return c.Cfg.Obs }

// traceCtx is the repair-wave trace context an apply runs under: the wave
// ID minted at the cascade's origin and the hop depth this apply
// represents (origin = hop 0). The zero value means "no incoming context";
// applyActionsGated then mints a fresh wave. Trace context is protocol
// state, not an obs feature: it is parsed, minted, stamped, and persisted
// unconditionally, so instrumented and uninstrumented runs consume
// identical ID sequences and take byte-identical schedules.
type traceCtx struct {
	wave string
	hop  int
}

// traceFromCarrier reads the wave context a repair-plane carrier rode in
// with (stamped by the sender's stampDelivery).
func traceFromCarrier(req wire.Request) traceCtx {
	tc := traceCtx{wave: req.Header[wire.HdrTraceID]}
	if tc.wave != "" {
		tc.hop, _ = strconv.Atoi(req.Header[wire.HdrTraceHop])
	}
	return tc
}

// HandleWire implements transport.Handler: repair API paths are handled by
// the controller itself; everything else is normal application traffic.
// Repair-plane carriers run two protocol preambles first: the body
// checksum (a corrupted payload is refused loudly, not misapplied) and —
// in version-vector mode — the announced-vector observation, whose gap
// verdict is NACKed on the response so the sender can re-offer the lost
// delivery without waiting out backoff.
func (c *Controller) HandleWire(from string, req wire.Request) wire.Response {
	var resp wire.Response
	switch req.Path {
	case "/aire/repair", "/aire/notify":
		// A carrier stamped for a sibling shard must never be absorbed
		// here: its delivery ID would commit into the wrong shard's dedup
		// inbox and the real destination would never see the repair. Fail
		// loudly and retryably so a (buggy) misroute surfaces instead of
		// converging to a wrong world.
		if want := req.Header[wire.HdrShard]; want != "" && want != c.Svc.Name {
			return wire.NewResponse(500, "aire: carrier addressed to shard "+want+" delivered to "+c.Svc.Name)
		}
		if bad := c.verifyCarrierBody(req); bad != nil {
			return *bad
		}
		nack, missing := c.observeCarrierVector(from, req)
		if req.Path == "/aire/repair" {
			resp = c.handleRepair(from, req)
		} else {
			resp = c.handleNotify(from, req)
		}
		if nack {
			if resp.Header == nil {
				resp.Header = map[string]string{}
			}
			resp.Header[wire.HdrNackSeq] = strconv.FormatUint(missing, 10)
		}
	case "/aire/fetch_repair":
		resp = c.handleFetchRepair(from, req)
	case "/aire/poll":
		resp = c.handlePoll(from, req)
	default:
		resp = c.handleNormal(from, req)
	}
	return resp
}

var _ transport.Handler = (*Controller)(nil)

// handleNormal executes one live request: assign identifiers, run the
// handler with full interception, commit the record and effects.
func (c *Controller) handleNormal(from string, req wire.Request) wire.Response {
	// Deferred LIFO: walCommit (writes the entry, under the lock), then
	// Svc.Mu unlocks, then walSettle runs the owed fsync outside every
	// lock — still before the response reaches the client.
	defer c.walSettle()
	c.Svc.Mu.Lock()
	defer c.Svc.Mu.Unlock()
	// The request's store writes and log append form one commit: they land
	// in the WAL as a single entry, applied all-or-nothing on recovery.
	c.walBegin("exec")
	defer c.walCommit()
	c.smu.Lock()
	c.stats.Requests++
	c.smu.Unlock()
	c.met.requests.Inc()

	rec := &repairlog.Record{
		ID:           c.Svc.IDs.Request(),
		TS:           c.Svc.Clock.Next(),
		From:         from,
		ClientRespID: req.Header[wire.HdrResponseID],
		NotifierURL:  req.Header[wire.HdrNotifierURL],
		Req:          req,
	}
	exec := &web.Exec{Svc: c.Svc, Rec: rec, Mode: web.Normal, Outbound: c.outboundNormal}
	resp := exec.Run()
	if resp.Header == nil {
		resp.Header = map[string]string{}
	}
	resp.Header[wire.HdrRequestID] = rec.ID
	rec.Resp = resp
	if err := c.Svc.Log.Append(rec); err != nil {
		return wire.NewResponse(500, "aire: "+err.Error())
	}
	for _, ef := range rec.Effects {
		c.Svc.PerformEffect(ef)
	}
	c.emit(EvRequest, rec.ID, "%s %s from=%q -> %d", req.Method, req.Path, from, resp.Status)
	return resp
}

// outboundNormal sends a live outgoing call with Aire headers attached
// (§3.1) and records the identifiers both sides assigned.
func (c *Controller) outboundNormal(seq int, target string, req wire.Request) (wire.Response, repairlog.Call) {
	respID := c.Svc.IDs.Response()
	out := req.WithHeader(
		wire.HdrResponseID, respID,
		wire.HdrNotifierURL, transport.NotifierURL(c.Svc.Name),
	)
	call := repairlog.Call{Target: target, RespID: respID, Req: req.Clone()}
	c.beginLiveCall(target)
	resp, err := c.Net.Call(c.Svc.Name, target, out)
	c.endLiveCall(target)
	if err != nil {
		resp = wire.NewResponse(wire.StatusTimeout, "aire: peer unavailable: "+err.Error())
		call.Failed = true
	} else {
		call.RemoteReqID = resp.Header[wire.HdrRequestID]
	}
	call.Resp = resp
	return resp.Clone(), call
}

// handleRepair services the repair API of Table 1 (replace, delete, create
// arrive here; replace_response uses the notify/fetch handshake). Carriers
// naming their delivery (wire.HdrDeliveryID) pass through the exactly-once
// dedup inbox first: duplicates and superseded generations are acknowledged
// without touching the log — in particular, a re-delivered create returns
// the originally minted request ID instead of minting a second one.
func (c *Controller) handleRepair(from string, req wire.Request) wire.Response {
	gate, acked := c.gateDelivery(from, req)
	if acked != nil {
		return *acked
	}
	resp := c.applyRepairRequest(from, req, &gate)
	if resp.OK() {
		gate.commit(resp.Header[wire.HdrRequestID])
	} else {
		gate.rollback()
	}
	return resp
}

// applyRepairRequest is handleRepair's at-least-once body: authorize and
// apply one replace/delete/create carrier. In batch-incoming mode the gate
// travels with the queued action (ProcessIncoming commits it at apply
// time) and is deactivated here, so the caller's commit-on-202 is a no-op.
func (c *Controller) applyRepairRequest(from string, req wire.Request, gate *deliveryGate) wire.Response {
	op := warp.OutKind(req.Header[wire.HdrRepair])
	targetID := req.Header[wire.HdrRequestID]
	tc := traceFromCarrier(req)

	var action warp.Action
	var ac AuthzRequest
	ac.Kind = op
	ac.From = from
	ac.Carrier = req

	// Svc.Mu is held from the log lookup through Authorize: local repair
	// mutates log records and rolls the store back under this lock, and
	// repair messages arrive concurrently with it once the peer pumps in
	// the background — the policy must not observe a mid-repair store.
	c.Svc.Mu.Lock()
	ac.Now = orm.Snapshot(c.Svc.Store, c.Svc.Schema, c.Svc.Clock.Now())

	switch op {
	case warp.OutReplace, warp.OutDelete:
		rec, ok := c.Svc.Log.Get(targetID)
		if !ok {
			gc := c.Svc.Log.GCBefore()
			c.Svc.Mu.Unlock()
			if gc > 0 {
				return wire.NewResponse(410, "aire: request log garbage-collected; repair permanently unavailable")
			}
			return wire.NewResponse(404, "aire: no such request "+targetID)
		}
		ac.Original = rec.Req.Clone()
		ac.OriginalResp = rec.Resp.Clone()
		ac.OriginalFrom = rec.From
		ac.Snapshot = orm.Snapshot(c.Svc.Store, c.Svc.Schema, rec.TS)
		if op == warp.OutDelete {
			action = warp.Action{Kind: warp.CancelReq, ReqID: targetID}
		} else {
			newReq, err := wire.DecodeRequest(req.Body)
			if err != nil {
				c.Svc.Mu.Unlock()
				return wire.NewResponse(400, "aire: bad replace payload: "+err.Error())
			}
			ac.Repaired = newReq
			action = warp.Action{
				Kind: warp.ReplaceReq, ReqID: targetID, NewReq: newReq,
				From: from, ClientRespID: req.Header[wire.HdrResponseID], NotifierURL: req.Header[wire.HdrNotifierURL],
			}
		}

	case warp.OutCreate:
		newReq, err := wire.DecodeRequest(req.Body)
		if err != nil {
			c.Svc.Mu.Unlock()
			return wire.NewResponse(400, "aire: bad create payload: "+err.Error())
		}
		ac.Repaired = newReq
		ac.Snapshot = orm.Snapshot(c.Svc.Store, c.Svc.Schema, c.Svc.Clock.Now())
		action = warp.Action{
			Kind: warp.CreateReq, NewReq: newReq,
			BeforeID: req.Form["before_id"], AfterID: req.Form["after_id"],
			From: from, ClientRespID: req.Header[wire.HdrResponseID], NotifierURL: req.Header[wire.HdrNotifierURL],
		}

	default:
		c.Svc.Mu.Unlock()
		return wire.NewResponse(400, "aire: unknown repair operation "+string(op))
	}

	// Access control is the application's decision (§4).
	authorized := c.AppImpl.Authorize(ac)
	c.Svc.Mu.Unlock()
	if !authorized {
		c.emit(EvRepairDenied, targetID, "%s from %q denied by policy", op, from)
		return wire.NewResponse(403, "aire: repair not authorized")
	}

	if c.Cfg.BatchIncoming {
		c.enqueueIncoming(action, gate, tc)
		return wire.NewResponse(202, "aire: repair queued")
	}

	res, err := c.applyActionsGated([]warp.Action{action}, gate, tc)
	if err != nil {
		if errors.Is(err, warp.ErrGarbageCollected) {
			return wire.NewResponse(410, "aire: "+err.Error())
		}
		return wire.NewResponse(400, "aire: "+err.Error())
	}

	resp := wire.NewResponse(200, fmt.Sprintf("aire: repaired %d/%d requests", res.RepairedRequests, res.TotalRequests))
	// Tell the sender which local request the repair settled on: for create
	// that is the freshly minted request ID; for replace/delete the
	// existing one. The sender records it for future repairs.
	if len(res.CreatedIDs) > 0 {
		resp.Header[wire.HdrRequestID] = res.CreatedIDs[0]
	} else {
		resp.Header[wire.HdrRequestID] = targetID
	}
	return resp
}

// handleNotify receives a response-repair token (§3.1): the client fetches
// the actual replace_response from the server named in the token delivery,
// authenticating the server in the process (on the bus, by name resolution;
// over TLS, by certificate). Notify deliveries carry delivery identity like
// repair calls do, so a re-delivered notify whose acknowledgment was lost
// is re-acked without re-fetching or re-applying.
func (c *Controller) handleNotify(from string, req wire.Request) wire.Response {
	gate, acked := c.gateDelivery(from, req)
	if acked != nil {
		return *acked
	}
	resp := c.applyNotify(from, req, &gate)
	if resp.OK() {
		gate.commit("")
	} else {
		gate.rollback()
	}
	return resp
}

// applyNotify is handleNotify's at-least-once body: fetch the corrected
// response named by the token and apply it. See applyRepairRequest for the
// gate's batch-incoming hand-off.
func (c *Controller) applyNotify(from string, req wire.Request, gate *deliveryGate) wire.Response {
	token := req.Form["token"]
	server := req.Form["server"]
	if token == "" || server == "" {
		return wire.NewResponse(400, "aire: notify requires token and server")
	}
	fetch := wire.NewRequest("POST", "/aire/fetch_repair").WithForm("token", token)
	fresp, err := c.Net.Call(c.Svc.Name, server, fetch)
	if err != nil {
		return wire.NewResponse(503, "aire: cannot fetch repair from "+server)
	}
	if !fresp.OK() {
		return wire.NewResponse(502, "aire: fetch_repair failed: "+string(fresp.Body))
	}
	var payload respRepairPayload
	if err := json.Unmarshal(fresp.Body, &payload); err != nil {
		return wire.NewResponse(502, "aire: bad fetch_repair payload")
	}

	newResp, err := wire.DecodeResponse(payload.Resp)
	if err != nil {
		return wire.NewResponse(400, "aire: bad replace_response body")
	}
	// Svc.Mu is held from the log lookup through Authorize: see
	// handleRepair — local repair mutates records and the store under this
	// lock, concurrently with incoming notify deliveries. The lookup
	// itself is an O(1) probe of the log's response-ID index, so holding
	// the service lock here no longer costs a full log scan per delivery.
	c.Svc.Mu.Lock()
	rec, i, ok := c.Svc.Log.FindByCallRespID(payload.RespID)
	if !ok {
		c.Svc.Mu.Unlock()
		return wire.NewResponse(404, "aire: unknown response "+payload.RespID)
	}
	// The server may only repair responses it itself produced. Call
	// records name the peer by its unqualified service name, while a
	// sharded producer notifies under its shard-qualified name — any
	// shard of the recorded target is the same producing service.
	if rec.Calls[i].Target != server && rec.Calls[i].Target != ShardBaseName(server) {
		c.Svc.Mu.Unlock()
		return wire.NewResponse(403, "aire: response "+payload.RespID+" was not produced by "+server)
	}
	ac := AuthzRequest{
		Kind:         warp.OutReplaceResponse,
		From:         server,
		Original:     rec.Calls[i].Req.Clone(),
		OriginalResp: rec.Calls[i].Resp.Clone(),
		RepairedResp: newResp,
		Carrier:      req,
		Snapshot:     orm.Snapshot(c.Svc.Store, c.Svc.Schema, rec.TS),
		Now:          orm.Snapshot(c.Svc.Store, c.Svc.Schema, c.Svc.Clock.Now()),
	}
	authorized := c.AppImpl.Authorize(ac)
	c.Svc.Mu.Unlock()
	if !authorized {
		return wire.NewResponse(403, "aire: replace_response not authorized")
	}

	action := warp.Action{
		Kind: warp.ReplaceCallResp, RespID: payload.RespID,
		NewResp: newResp, RemoteReqID: payload.RemoteReqID,
	}
	// The notify carrier, not the fetched payload, carries the wave
	// context: the token handshake is one hop of the wave.
	tc := traceFromCarrier(req)
	if c.Cfg.BatchIncoming {
		c.enqueueIncoming(action, gate, tc)
		return wire.NewResponse(202, "aire: repair queued")
	}
	if _, err := c.applyActionsGated([]warp.Action{action}, nil, tc); err != nil {
		return wire.NewResponse(400, "aire: "+err.Error())
	}
	return wire.NewResponse(200, "aire: response repaired")
}

type respRepairPayload struct {
	RespID      string `json:"resp_id"`
	RemoteReqID string `json:"remote_req_id"`
	Resp        []byte `json:"resp"`
}

// handleFetchRepair serves a queued replace_response to the client that was
// notified (§3.1's second step). Tokens with an empty audience were parked
// for a polling client and act as bearer capabilities.
func (c *Controller) handleFetchRepair(from string, req wire.Request) wire.Response {
	token := req.Form["token"]
	c.tokmu.Lock()
	entry, ok := c.tokens[token]
	if ok && entry.audience == from || ok && entry.audience == "" {
		delete(c.tokens, token)
	}
	c.tokmu.Unlock()
	if !ok {
		return wire.NewResponse(404, "aire: unknown repair token")
	}
	if entry.audience != "" && entry.audience != from {
		return wire.NewResponse(403, "aire: token not addressed to "+from)
	}
	return wire.Response{Status: 200, Header: map[string]string{}, Body: entry.payload}
}

// handlePoll returns (and clears) the response-repair tokens parked for a
// browser-style client that supplied a poll:// notifier URL. The client
// fetches each token's payload via /aire/fetch_repair.
func (c *Controller) handlePoll(from string, req wire.Request) wire.Response {
	clientID := req.Form["client_id"]
	if clientID == "" {
		return wire.NewResponse(400, "aire: poll requires client_id")
	}
	c.tokmu.Lock()
	tokens := c.mailboxes[clientID]
	delete(c.mailboxes, clientID)
	c.tokmu.Unlock()
	body, err := json.Marshal(tokens)
	if err != nil {
		return wire.NewResponse(500, "aire: "+err.Error())
	}
	return wire.Response{Status: 200, Header: map[string]string{}, Body: body}
}

// applyActions runs local repair and queues the resulting repair messages.
// The repair's store/log mutations and its queue effects commit as ONE WAL
// entry (see applyActionsGated), so a crash-recovered service never holds
// the repaired state without the downstream messages it produced.
func (c *Controller) applyActions(actions []warp.Action) (*warp.Result, error) {
	return c.applyActionsGated(actions, nil, traceCtx{})
}

// applyActionsGated runs local repair with everything the repair implies —
// the store/log mutations, the q-set ops of the downstream messages it
// queues, and (when a delivery gate is supplied) the gate's exactly-once
// inbox outcome — folded into ONE WAL entry. Replay is then all-or-nothing:
// either the delivery fully happened (inbox committed, so a redelivery is
// re-acknowledged; messages queued exactly once) or none of it did (the
// redelivery re-applies cleanly). The historical split-entry behavior — the
// documented double-queue/lost-cascade crash windows — is preserved behind
// Config.FaultSplitRepairCommit for the regression test.
func (c *Controller) applyActionsGated(actions []warp.Action, gate *deliveryGate, tc traceCtx) (*warp.Result, error) {
	// No incoming wave context: this repair originates a cascade. The wave
	// is minted unconditionally (obs-on and obs-off runs must consume the
	// same ID sequence) from the persisted counter, so it stays unique
	// across crash-restart like every other identifier.
	if tc.wave == "" {
		tc = traceCtx{wave: c.Svc.IDs.Wave(), hop: 0}
	}
	if c.Cfg.FaultSplitRepairCommit {
		// Historical ordering: repair entry, then standalone q-set entries,
		// with the gate left for the caller to commit afterwards.
		c.Svc.Mu.Lock()
		if err := c.checkIndexesLocked(); err != nil {
			c.Svc.Mu.Unlock()
			return nil, err
		}
		c.walBegin("repair")
		res, err := c.Engine.Repair(actions)
		c.walCommit()
		c.Svc.Mu.Unlock()
		c.walSettle()
		if err != nil {
			return nil, err
		}
		c.finishRepair(actions, res, false, tc)
		return res, nil
	}
	c.Svc.Mu.Lock()
	if err := c.checkIndexesLocked(); err != nil {
		// The gate (if any) stays active: the caller's rollback-on-error
		// answers the sender retryably, exactly as if the repair never ran.
		c.Svc.Mu.Unlock()
		return nil, err
	}
	c.walBegin("repair")
	res, err := c.Engine.Repair(actions)
	if err != nil {
		if gate != nil {
			// Take ownership of the gate (the caller's rollback-on-error
			// becomes a no-op) so its outcome lands inside this entry.
			gate.rollbackEmit(true)
			gate.active = false
		}
		c.walCommit()
		c.Svc.Mu.Unlock()
		c.walSettle()
		return nil, err
	}
	// Queue effects join the open batch (qmu nests inside Svc.Mu), then the
	// gate's inbox commit — with the minted request ID as the outcome for
	// creates — lands in the same entry. Ownership of the gate transfers
	// here: the caller's commit-on-OK becomes a no-op.
	c.enqueueJoin(res.Msgs, true, tc)
	if gate != nil {
		outcome := ""
		if len(res.CreatedIDs) > 0 {
			outcome = res.CreatedIDs[0]
		}
		gate.commitEmit(outcome, true)
		gate.active = false
	}
	c.walCommit()
	c.Svc.Mu.Unlock()
	c.walSettle()
	c.finishRepair(actions, res, true, tc)
	return res, nil
}

// checkIndexesLocked is the repair-wave-start coherence guard: when
// Config.StrictIndexes is set it cross-checks the store's and the repair
// log's secondary indexes against their primary state and refuses to start
// the wave on any divergence. The indexes drive which records a repair
// visits (the inverted-dependency walk) and which call a replace_response
// lands on (respIdx); running a wave over a drifted index repairs the wrong
// slice silently, so a loud pre-wave failure is strictly better. Pure
// reads — no yields, no IDs, no rng, no WAL traffic — so runs with the
// guard on and off execute identical schedules. Caller holds Svc.Mu.
func (c *Controller) checkIndexesLocked() error {
	if !c.Cfg.StrictIndexes {
		return nil
	}
	if err := c.Svc.Store.VerifyIndexes(); err != nil {
		return fmt.Errorf("aire: %s: store index incoherent at repair-wave start: %w", c.Svc.Name, err)
	}
	if err := c.Svc.Log.VerifyIndexes(); err != nil {
		return fmt.Errorf("aire: %s: repair-log index incoherent at repair-wave start: %w", c.Svc.Name, err)
	}
	return nil
}

// finishRepair does a completed local repair's unlocked bookkeeping:
// counters, notifications, and — unless the caller already queued them
// inside its WAL batch (enqueued) — the outbound messages.
func (c *Controller) finishRepair(actions []warp.Action, res *warp.Result, enqueued bool, tc traceCtx) {
	c.smu.Lock()
	c.stats.RepairsRun++
	c.smu.Unlock()
	c.rmu.Lock()
	c.repairedReqs += res.RepairedRequests
	c.repairedOps += res.RepairedModelOps
	c.lastTotalReqs = res.TotalRequests
	c.lastTotalOps = res.TotalModelOps
	c.repairDuration += res.Duration
	c.rmu.Unlock()
	c.met.repairsRun.Inc()
	c.met.repairNS.ObserveNS(int64(res.Duration))
	if c.met.reg != nil {
		// One span per warp phase, laid out back-to-back ending now; the
		// phase durations come from the engine's own wall clock, the span
		// endpoints from the controller clock (virtual under -sched).
		end := c.now().UnixNano()
		for i := len(res.PhaseDurations) - 1; i >= 0; i-- {
			start := end - int64(res.PhaseDurations[i])
			c.met.ring.Record(obs.Span{
				Wave: tc.wave, Hop: tc.hop, Service: c.Svc.Name,
				Kind: obs.SpanRepair, Subject: warp.RepairPhases[i],
				StartNS: start, EndNS: end,
			})
			end = start
		}
	}
	if !enqueued {
		c.enqueue(res.Msgs, tc)
	}
	for _, n := range res.Notices {
		c.notify(Notification{Kind: string(n.Kind), Detail: n.Detail, RepairType: "local"})
	}
	c.emit(EvRepairApplied, fmt.Sprintf("%d action(s)", len(actions)),
		"re-executed %d/%d requests, queued %d message(s)", res.RepairedRequests, res.TotalRequests, len(res.Msgs))
}

// ApplyLocal lets a local administrator (or application code) initiate
// repair directly — e.g. cancelling the attack request that started an
// intrusion (§2: "asks Aire to cancel the attacker's request").
func (c *Controller) ApplyLocal(actions ...warp.Action) (*warp.Result, error) {
	return c.applyActions(actions)
}

// queuedAction is one batched incoming repair action plus the delivery
// gate that admitted it: the gate's reservation is held until the batch
// applies, so a redelivery in the meantime is answered retryably instead
// of being acked for an apply that has not happened. With a WAL attached,
// acceptance is logged (batch-accept) and persisted snapshots carry the
// pending batch, so the 202 ack no longer races a crash: accepted actions
// are recovered and applied by the next ProcessIncoming.
type queuedAction struct {
	// seq is the accept sequence (Controller.inseq at admission): the
	// entry's durable identity, matched by replayed batch-drain watermarks.
	seq    uint64
	action warp.Action
	gate   deliveryGate
	// wave / hop are the accepted carrier's trace context, persisted with
	// the batch-accept op so a recovered batch keeps its wave identity.
	wave string
	hop  int
}

// enqueueIncoming stashes an admitted action in the incoming batch queue,
// taking ownership of its delivery gate (the caller's commit/rollback
// become no-ops). The acceptance is WAL-logged inside the same critical
// section, so accepted actions survive a crash before ProcessIncoming —
// closing the batch-mode durability window the 202 ack used to open.
func (c *Controller) enqueueIncoming(action warp.Action, gate *deliveryGate, tc traceCtx) {
	c.inmu.Lock()
	c.inseq++
	seq := c.inseq
	c.inbox = append(c.inbox, queuedAction{seq: seq, action: action, gate: *gate, wave: tc.wave, hop: tc.hop})
	if c.walAttached() {
		c.walEmit("batch", mustOp("batch-accept", batchAcceptOp{
			Seq: seq, Action: action, Origin: gate.origin, ID: gate.id, Gen: gate.gen, Once: gate.once,
			Wave: tc.wave, Hop: tc.hop,
		}), false)
	}
	c.inmu.Unlock()
	gate.active = false
}

// ProcessIncoming applies all batched incoming repair actions as one local
// repair (§3.2) and returns the result (nil if the inbox was empty). The
// actions' delivery gates commit here — with the minted request ID as the
// outcome for creates — or roll back if the batch fails, so the senders'
// redeliveries are re-applied rather than falsely acknowledged.
func (c *Controller) ProcessIncoming() (*warp.Result, error) {
	if c.Cfg.StrictIndexes {
		// Check before draining the inbox: on failure the accepted batch
		// stays pending (and WAL-persisted), so nothing is silently lost
		// behind the loud error.
		c.Svc.Mu.Lock()
		err := c.checkIndexesLocked()
		c.Svc.Mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	c.inmu.Lock()
	queued := c.inbox
	c.inbox = nil
	c.inmu.Unlock()
	if len(queued) == 0 {
		return nil, nil
	}
	actions := make([]warp.Action, len(queued))
	drainIDs := make([]string, 0, len(queued))
	// The batch applies under the deepest trace context among its actions
	// (the conservative choice: the batch's emitted messages belong to the
	// deepest wave that fed it; a batch mixing waves attributes the whole
	// apply to that one). A batch with no traced action originates a wave.
	var tc traceCtx
	for i, q := range queued {
		actions[i] = q.action
		if q.gate.id != "" {
			drainIDs = append(drainIDs, q.gate.id)
		}
		if q.wave != "" && (tc.wave == "" || q.hop > tc.hop) {
			tc = traceCtx{wave: q.wave, hop: q.hop}
		}
	}
	if tc.wave == "" {
		tc = traceCtx{wave: c.Svc.IDs.Wave(), hop: 0}
	}
	// Accept seqs ascend in inbox order, so the last entry's seq is the
	// drain watermark: replay removes entries at or below it and nothing
	// accepted afterwards.
	drainUpTo := queued[len(queued)-1].seq
	// The whole batch — the repair's mutations, the gates' inbox outcomes,
	// and the drain of the accepted actions — commits as ONE WAL entry, so
	// a recovered service has either the applied batch or the still-pending
	// accepted actions, never half of each.
	c.Svc.Mu.Lock()
	c.walBegin("batch")
	res, err := c.Engine.Repair(actions)
	if err != nil {
		for _, q := range queued {
			q.gate.rollbackEmit(true)
		}
		c.walEmit("batch", mustOp("batch-drain", batchDrainOp{UpToSeq: drainUpTo, N: len(queued), IDs: drainIDs}), true)
		c.walCommit()
		c.Svc.Mu.Unlock()
		c.walSettle()
		return nil, err
	}
	created := 0
	for _, q := range queued {
		outcome := ""
		if q.action.Kind == warp.CreateReq && created < len(res.CreatedIDs) {
			outcome = res.CreatedIDs[created]
			created++
		}
		q.gate.commitEmit(outcome, true)
	}
	// The queue effects of the batch's repair join the same entry: a
	// recovered service must not hold the applied batch (inbox committed,
	// actions drained) without the downstream messages it produced. The
	// historical split — queue effects as separate entries after the batch
	// commit, i.e. the documented lost-cascade crash window — is preserved
	// behind Config.FaultSplitRepairCommit for the regression test.
	enqueued := !c.Cfg.FaultSplitRepairCommit
	if enqueued {
		c.enqueueJoin(res.Msgs, true, tc)
	}
	c.walEmit("batch", mustOp("batch-drain", batchDrainOp{UpToSeq: drainUpTo, N: len(queued), IDs: drainIDs}), true)
	c.walCommit()
	c.Svc.Mu.Unlock()
	c.walSettle()
	c.smu.Lock()
	c.stats.BatchApplies++
	c.smu.Unlock()
	c.met.batchApplies.Inc()
	c.finishRepair(actions, res, enqueued, tc)
	return res, nil
}

// InboxLen reports how many incoming repair actions are waiting (batch mode).
func (c *Controller) InboxLen() int {
	c.inmu.Lock()
	defer c.inmu.Unlock()
	return len(c.inbox)
}

// notify records a notification and forwards it to the application if it
// implements Notifier (Table 2).
func (c *Controller) notify(n Notification) {
	c.nmu.Lock()
	c.notifications = append(c.notifications, n)
	c.nmu.Unlock()
	if an, ok := c.AppImpl.(Notifier); ok {
		an.Notify(n)
	}
}

// Notifications returns all recorded notifications.
func (c *Controller) Notifications() []Notification {
	c.nmu.Lock()
	defer c.nmu.Unlock()
	return append([]Notification(nil), c.notifications...)
}

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	c.smu.Lock()
	defer c.smu.Unlock()
	return c.stats
}

// RepairCounts reports cumulative repair work (the first two rows of
// Table 5): requests and model operations repaired across all local repairs,
// against the totals observed at the most recent repair.
func (c *Controller) RepairCounts() (repairedReqs, totalReqs, repairedOps, totalOps int) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.repairedReqs, c.lastTotalReqs, c.repairedOps, c.lastTotalOps
}

// RepairDuration reports the cumulative wall time spent in local repair
// (Table 5's "Local repair time").
func (c *Controller) RepairDuration() time.Duration {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.repairDuration
}

// AuditGraph builds the cross-request dependency graph of this service's
// repair log — the tooling an administrator uses to find what an intrusion
// touched before invoking repair (§2).
func (c *Controller) AuditGraph() *audit.Graph {
	c.Svc.Mu.Lock()
	defer c.Svc.Mu.Unlock()
	return audit.Build(c.Svc.Log)
}

// BlastRadius lists every local request and remote call transitively
// influenced by reqID, per the audit dependency graph.
func (c *Controller) BlastRadius(reqID string) []string {
	return c.AuditGraph().Descendants(reqID)
}

// GC garbage-collects repair logs and database versions older than beforeTS
// (§9). Repairs naming garbage-collected requests are afterwards refused
// with status 410 and the requesting peer notifies its administrator. The
// dedup inbox is collected with the same horizon: entries for deliveries
// applied before it are dropped, their sequence covered by the per-origin
// watermark so late duplicates stay deduplicated.
func (c *Controller) GC(beforeTS int64) {
	c.Svc.Mu.Lock()
	c.walBegin("gc")
	c.Svc.Log.GC(beforeTS)
	c.Svc.Store.GC(beforeTS)
	c.dedup.GC(beforeTS)
	if c.walAttached() {
		c.walEmit("gc", mustOp("in-gc", inGCOp{BeforeTS: beforeTS}), true)
	}
	c.walCommit()
	c.Svc.Mu.Unlock()
	c.walSettle()
}
