package harness

// Observability acceptance tests (ISSUE 8): wave reconstruction from
// propagated trace context, digest-neutrality of the instrumentation, and
// the widened quiesce progress signal.

import (
	"reflect"
	"testing"

	"aire/internal/obs"
)

// TestSchedObsDigestInvariant: turning the observability registry on must
// not perturb a scheduled-pump run in any way the digest can see — same
// StateDigest, same step count, the same task at every scheduling
// decision, across seeds 1–20. Trace propagation is always-on protocol
// behavior (wave IDs are minted whether or not anyone records them), so
// the only difference an obs-on run is allowed to have is what lands in
// the registry.
func TestSchedObsDigestInvariant(t *testing.T) {
	check := func(t *testing.T, profile string, lo, hi int64) {
		base, err := SimProfileConfig(profile)
		if err != nil {
			t.Fatal(err)
		}
		for seed := lo; seed <= hi; seed++ {
			off, on := base, base
			off.Seed, on.Seed = seed, seed
			off.ScheduledPump, on.ScheduledPump = true, true
			on.Obs = true
			roff, err1 := RunSim(off)
			ron, err2 := RunSim(on)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: %v / %v", seed, err1, err2)
			}
			if roff.StateDigest != ron.StateDigest {
				t.Errorf("seed %d: obs changed StateDigest: %x (off) vs %x (on)", seed, roff.StateDigest, ron.StateDigest)
			}
			if roff.SchedSteps != ron.SchedSteps || !reflect.DeepEqual(roff.SchedTrace, ron.SchedTrace) {
				t.Errorf("seed %d: obs changed the task schedule (%d vs %d steps)", seed, roff.SchedSteps, ron.SchedSteps)
			}
			if len(ron.WaveStats) == 0 || ron.ObsMetrics == nil {
				t.Errorf("seed %d: obs run recorded nothing (waves=%d)", seed, len(ron.WaveStats))
			}
		}
	}
	// mixed covers partitions + crashes + every wire fault across the full
	// seed range; crash additionally runs the WAL latency hooks and the
	// crash-recovery registry re-attach under power loss.
	t.Run("mixed", func(t *testing.T) { check(t, "mixed", 1, 20) })
	t.Run("crash", func(t *testing.T) { check(t, "crash", 1, 5) })
}

// TestObsWaveDepthAcrossCrashRecovery is the tentpole acceptance: a
// fault-injected scheduled-pump run under the crash profile (power-loss
// crash-restarts, WAL recovery) must reconstruct at least one repair wave
// of hop depth >= 3 — origin repair (0), repair carrier downstream (1),
// the next carrier plus replace_response upstream (2), and the deepest
// service's replace_response (3) — with per-hop latency, purely from the
// Aire-Trace-* context that rode the carriers and the WAL through
// crash-recovery.
func TestObsWaveDepthAcrossCrashRecovery(t *testing.T) {
	base, err := SimProfileConfig("crash")
	if err != nil {
		t.Fatal(err)
	}
	type deepRun struct {
		seed    int64
		crashes int
		wave    obs.WaveStat
	}
	var found *deepRun
	for seed := int64(1); seed <= 20 && found == nil; seed++ {
		cfg := base
		cfg.Seed = seed
		cfg.ScheduledPump = true
		cfg.Obs = true
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed || res.CrashCount == 0 {
			continue
		}
		for _, w := range res.WaveStats {
			if w.MaxHop >= 3 {
				found = &deepRun{seed: seed, crashes: res.CrashCount, wave: w}
				break
			}
		}
	}
	if found == nil {
		t.Fatal("no crash-profile seed in 1..20 produced a passing run with a wave of hop depth >= 3")
	}
	w := found.wave
	t.Logf("seed %d (%d crashes): wave %s origin=%s max-hop=%d spans=%d hops=%+v",
		found.seed, found.crashes, w.Wave, w.Origin, w.MaxHop, w.Spans, w.Hops)
	if w.Origin == "" {
		t.Errorf("deep wave has no origin (no hop-0 span correlated): %+v", w)
	}
	if len(w.Hops) == 0 {
		t.Fatalf("deep wave paired no per-hop latencies: %+v", w)
	}
	var sum int64
	paired := 0
	for _, h := range w.Hops {
		if h.Hop < 1 || h.Hop > w.MaxHop {
			t.Errorf("hop %d outside 1..%d", h.Hop, w.MaxHop)
		}
		paired += h.Msgs
		sum += h.SumLatencyNS
	}
	if paired == 0 {
		t.Fatalf("deep wave has hop entries but no paired carriers: %+v", w.Hops)
	}
	if sum <= 0 {
		t.Errorf("deep wave's per-hop latency sums to %d ns; expected a positive virtual-clock sojourn: %+v", sum, w.Hops)
	}
}

// TestQuiesceWidenedProgress is the quiesce-widening regression
// (carried ROADMAP debt): under batch-incoming mode repair progresses —
// accepted actions apply, inbox outcomes commit — without any new
// terminal delivery outcome, so the historical delivery-only quiesce
// signal declares the system settled while accepted repairs sit
// unapplied. The widened signal (inbox commits + batch applies, plus the
// pending-inbox done-check) must converge every seed; the narrow signal
// must demonstrably fail at least one of the same seeds.
func TestQuiesceWidenedProgress(t *testing.T) {
	base := SimConfig{
		Services:      3,
		Topology:      "chain",
		Repairs:       4,
		BatchIncoming: true,
		BatchEvery:    3,
	}
	narrowFailed := false
	for seed := int64(1); seed <= 10; seed++ {
		wide := base
		wide.Seed = seed
		res, err := RunSim(wide)
		if err != nil {
			t.Fatalf("seed %d (widened): %v", seed, err)
		}
		if !res.Passed {
			t.Errorf("seed %d: widened quiesce failed: %v", seed, res.Failures)
		}

		narrow := base
		narrow.Seed = seed
		narrow.narrowQuiesce = true
		nres, err := RunSim(narrow)
		if err != nil {
			// A harness error under the narrow signal also demonstrates
			// the failure mode (e.g. a repair issued against a state the
			// unapplied batch should have fixed).
			narrowFailed = true
			continue
		}
		if !nres.Passed {
			narrowFailed = true
		}
	}
	if !narrowFailed {
		t.Error("delivery-only (narrow) quiesce passed every seed; the widened-progress regression test is vacuous")
	}
}
