package dsched

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"aire/internal/simnet"
)

// runInterleaving runs three tasks that each append their steps to a shared
// log with Yields in between, and returns the log.
func runInterleaving(seed int64) []string {
	s := New(seed, simnet.NewClock(0))
	var log []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Go(name, func() {
			for i := 0; i < 3; i++ {
				log = append(log, fmt.Sprintf("%s%d", name, i))
				s.Yield()
			}
		})
	}
	s.RunUntilIdle()
	return log
}

// TestDeterministicInterleaving: the schedule is a pure function of the
// seed — identical across re-runs — and genuinely varies across seeds.
func TestDeterministicInterleaving(t *testing.T) {
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		l1, l2 := runInterleaving(seed), runInterleaving(seed)
		if !reflect.DeepEqual(l1, l2) {
			t.Fatalf("seed %d: re-run diverged:\n%v\n%v", seed, l1, l2)
		}
		if len(l1) != 9 {
			t.Fatalf("seed %d: lost steps: %v", seed, l1)
		}
		distinct[fmt.Sprint(l1)] = true
	}
	// With 3 tasks × 3 steps, eight seeds must explore more than one
	// interleaving or the rng is not actually driving the schedule.
	if len(distinct) < 2 {
		t.Fatalf("8 seeds produced only %d distinct interleavings", len(distinct))
	}
}

// TestTraceMatchesSteps: the trace records one task name per step and
// replays identically.
func TestTraceMatchesSteps(t *testing.T) {
	s := New(7, simnet.NewClock(0))
	s.Go("t1", func() { s.Yield(); s.Yield() })
	s.Go("t2", func() { s.Yield() })
	n := s.RunUntilIdle()
	if n != s.Steps() || len(s.Trace()) != n {
		t.Fatalf("steps=%d Steps()=%d len(trace)=%d", n, s.Steps(), len(s.Trace()))
	}
	if s.Live() != 0 {
		t.Fatalf("%d tasks leaked", s.Live())
	}
}

// TestSemBoundsConcurrency: a 2-slot semaphore never admits more than two
// tasks at once, under any schedule.
func TestSemBoundsConcurrency(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := New(seed, simnet.NewClock(0))
		sem := s.NewSem(2)
		inside, maxInside := 0, 0
		for i := 0; i < 5; i++ {
			s.Go(fmt.Sprintf("w%d", i), func() {
				if !sem.Acquire(context.Background()) {
					t.Error("Acquire returned false without cancellation")
					return
				}
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				s.Yield()
				inside--
				sem.Release()
			})
		}
		s.RunUntilIdle()
		if s.Live() != 0 {
			t.Fatalf("seed %d: %d tasks stuck", seed, s.Live())
		}
		if maxInside > 2 {
			t.Fatalf("seed %d: %d tasks inside a 2-slot semaphore", seed, maxInside)
		}
	}
}

// TestSemAcquireCancel: a task blocked on a full semaphore unblocks (with
// false) once the context is cancelled by the driver.
func TestSemAcquireCancel(t *testing.T) {
	s := New(1, simnet.NewClock(0))
	sem := s.NewSem(1)
	ctx, cancel := context.WithCancel(context.Background())
	got := make(map[string]bool)
	holding := false
	s.Go("holder", func() {
		sem.Acquire(context.Background())
		holding = true
		// Never releases: the second task can only unblock via cancel.
	})
	s.Go("blocked", func() {
		for !holding { // any schedule: block only after the slot is taken
			s.Yield()
		}
		got["acquired"] = sem.Acquire(ctx)
	})
	s.RunUntilIdle()
	if _, done := got["acquired"]; done {
		t.Fatal("second Acquire returned while the slot was held and ctx live")
	}
	cancel()
	s.RunUntilIdle()
	if v, done := got["acquired"]; !done || v {
		t.Fatalf("after cancel: done=%v acquired=%v, want done and false", done, v)
	}
}

// TestGroupWait: Wait parks until every Done lands.
func TestGroupWait(t *testing.T) {
	s := New(3, simnet.NewClock(0))
	g := s.NewGroup()
	g.Add(2)
	order := []string{}
	s.Go("waiter", func() {
		g.Wait()
		order = append(order, "waited")
	})
	for i := 0; i < 2; i++ {
		s.Go(fmt.Sprintf("worker%d", i), func() {
			order = append(order, "work")
			g.Done()
		})
	}
	s.RunUntilIdle()
	if len(order) != 3 || order[2] != "waited" {
		t.Fatalf("wait did not come last: %v", order)
	}
}

// TestPacerVirtualTime: a pacer fires only when the virtual clock crosses
// its deadline or it is woken; it never consumes wall time.
func TestPacerVirtualTime(t *testing.T) {
	clock := simnet.NewClock(1000)
	s := New(5, clock)
	p := s.NewPacer(100 * time.Millisecond)
	fired := 0
	s.Go("loop", func() {
		for fired < 3 {
			if !p.Wait(context.Background()) {
				return
			}
			fired++
		}
	})
	s.RunUntilIdle()
	if fired != 0 {
		t.Fatalf("pacer fired %d times with no time elapsed", fired)
	}
	clock.Advance(100 * time.Millisecond)
	s.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("one interval elapsed, fired %d times", fired)
	}
	p.Wake() // driver nudge substitutes for the deadline
	s.RunUntilIdle()
	if fired != 2 {
		t.Fatalf("after Wake, fired %d times", fired)
	}
	clock.Advance(time.Hour)
	s.RunUntilIdle()
	if fired != 3 || s.Live() != 0 {
		t.Fatalf("fired=%d live=%d after final advance", fired, s.Live())
	}
}

// TestPacerCancel: cancellation unblocks Wait with false, the pump
// shutdown path.
func TestPacerCancel(t *testing.T) {
	s := New(9, simnet.NewClock(0))
	p := s.NewPacer(time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	exited := false
	s.Go("pump", func() {
		for p.Wait(ctx) {
		}
		exited = true
	})
	s.RunUntilIdle()
	if exited {
		t.Fatal("pump exited before cancel")
	}
	cancel()
	s.RunUntilIdle()
	if !exited || s.Live() != 0 {
		t.Fatalf("exited=%v live=%d after cancel", exited, s.Live())
	}
}

// TestSpawnFromTask: tasks spawned from inside a running task join the
// schedule deterministically.
func TestSpawnFromTask(t *testing.T) {
	s := New(11, simnet.NewClock(0))
	ran := map[string]bool{}
	s.Go("parent", func() {
		ran["parent"] = true
		s.Go("child", func() { ran["child"] = true })
		s.Yield()
	})
	s.RunUntilIdle()
	if !ran["parent"] || !ran["child"] {
		t.Fatalf("ran=%v", ran)
	}
}

// TestDriverYieldNoop: Yield outside any task is a no-op, so shared code
// paths (Flush calling deliverBatch) work unscheduled.
func TestDriverYieldNoop(t *testing.T) {
	s := New(13, simnet.NewClock(0))
	s.Yield() // must not panic or block
	if s.Steps() != 0 {
		t.Fatalf("driver Yield consumed a step")
	}
}
