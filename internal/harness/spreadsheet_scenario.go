package harness

import (
	"fmt"

	"aire/internal/apps/spreadsheet"
	"aire/internal/core"
	"aire/internal/wire"
)

// Principals and tokens used by the spreadsheet scenarios (Figure 5).
const (
	BootstrapToken = "sheet-bootstrap"
	DirectorUser   = "director"
	DirectorToken  = "tok-director"
	AdminUser      = "admin"
	AdminToken     = "tok-admin"
	AttackerUser   = "mallory"
	AttackerToken  = "tok-mallory"
	LegitUser      = "alice"
	LegitToken     = "tok-alice"
)

// SheetScenario is the three-service spreadsheet setup of Figure 5: an ACL
// directory holding the master access-control list, and two spreadsheet
// services whose ACLs the directory's script keeps in sync.
type SheetScenario struct {
	TB   *Testbed
	Dir  *core.Controller
	A, B *core.Controller

	// AdminMistakeReqID is the request the administrator later cancels
	// (the ACL mistake, or the world-writable misconfiguration).
	AdminMistakeReqID string
	// AdminMistakeReqID2 is the second ACL mistake (sheetB's entry) in the
	// lax-permission scenario.
	AdminMistakeReqID2 string
	// CorruptReqIDs are the attacker's corrupting /set requests.
	CorruptReqIDs []string
	// ExpectedBudgetA is the legitimate value Verify expects in sheetA's
	// "budget" cell after repair (default "100"; tests that write later
	// legitimate values update it).
	ExpectedBudgetA string
}

// NewSheetScenario stands up the directory and spreadsheets A and B,
// seeding ACLs, service tokens, the distribution scripts on the directory,
// and (optionally) a sync script on A for the corrupt-data scenario.
func NewSheetScenario(withSync bool, cfg core.Config) *SheetScenario {
	tb := NewTestbed()
	s := &SheetScenario{
		TB:  tb,
		Dir: tb.Add(spreadsheet.New("dir", BootstrapToken), cfg),
		A:   tb.Add(spreadsheet.New("sheetA", BootstrapToken), cfg),
		B:   tb.Add(spreadsheet.New("sheetB", BootstrapToken), cfg),
	}
	tb.FreezeTime(1_380_000_000)

	seed := func(svc, path string, kv ...string) {
		tb.MustCall(svc, wire.NewRequest("POST", path).WithForm(kv...).
			WithHeader("X-Bootstrap", BootstrapToken))
	}
	for _, svc := range []string{"dir", "sheetA", "sheetB"} {
		// The director may administer ACLs everywhere; the admin may write
		// the directory; alice may write the sheets.
		seed(svc, "/seed/token", "user", DirectorUser, "value", DirectorToken)
		seed(svc, "/seed/token", "user", AdminUser, "value", AdminToken)
		seed(svc, "/seed/token", "user", AttackerUser, "value", AttackerToken)
		seed(svc, "/seed/token", "user", LegitUser, "value", LegitToken)
		seed(svc, "/seed/acl", "user", DirectorUser, "perms", "rwa")
	}
	seed("dir", "/seed/acl", "user", AdminUser, "perms", "rw")
	for _, svc := range []string{"sheetA", "sheetB"} {
		seed(svc, "/seed/acl", "user", LegitUser, "perms", "rw")
	}
	// Distribution scripts: a change to cell "acl:sheetA:<user>" on the
	// directory updates sheetA's ACL for <user> (same for sheetB).
	seed("dir", "/seed/script", "id", "dist-a", "trigger", "acl:sheetA:",
		"action", "distribute", "target", "sheetA", "owner", DirectorUser, "token", DirectorToken)
	seed("dir", "/seed/script", "id", "dist-b", "trigger", "acl:sheetB:",
		"action", "distribute", "target", "sheetB", "owner", DirectorUser, "token", DirectorToken)
	if withSync {
		// Sync script: changes to "shared:*" cells on A replicate to B.
		seed("sheetA", "/seed/script", "id", "sync-b", "trigger", "shared:",
			"action", "sync", "target", "sheetB", "owner", LegitUser, "token", LegitToken)
	}
	return s
}

// RunLegitTraffic writes some legitimate cells on both sheets.
func (s *SheetScenario) RunLegitTraffic() {
	s.TB.MustCall("sheetA", setCell("budget", "100", LegitUser, LegitToken))
	s.TB.MustCall("sheetB", setCell("headcount", "7", LegitUser, LegitToken))
	s.ExpectedBudgetA = "100"
}

// RunLaxPermissionAttack performs the first §7.1 spreadsheet scenario: the
// administrator mistakenly grants the attacker write access in the master
// ACL; the directory's script distributes it; the attacker corrupts cells
// on both sheets.
func (s *SheetScenario) RunLaxPermissionAttack() error {
	for _, target := range []string{"sheetA", "sheetB"} {
		resp := s.TB.Call("dir", setCell("acl:"+target+":"+AttackerUser, "rw", AdminUser, AdminToken))
		if !resp.OK() {
			return fmt.Errorf("admin ACL update: %s", resp.Body)
		}
		// The administrator made two mistakes (one per sheet); both are
		// cancelled at repair time.
		if s.AdminMistakeReqID == "" {
			s.AdminMistakeReqID = resp.Header[wire.HdrRequestID]
		} else {
			s.AdminMistakeReqID2 = resp.Header[wire.HdrRequestID]
		}
	}
	// The attacker exploits the distributed permission.
	for _, target := range []string{"sheetA", "sheetB"} {
		resp := s.TB.Call(target, setCell("budget", "0wned", AttackerUser, AttackerToken))
		if !resp.OK() {
			return fmt.Errorf("attacker write to %s should have succeeded: %s", target, resp.Body)
		}
		s.CorruptReqIDs = append(s.CorruptReqIDs, resp.Header[wire.HdrRequestID])
	}
	return nil
}

// RunWorldWritableAttack performs the second scenario: the directory itself
// is misconfigured world-writable, and the attacker adds *themselves* to
// the master ACL before corrupting the sheets.
func (s *SheetScenario) RunWorldWritableAttack() error {
	resp := s.TB.Call("dir", wire.NewRequest("POST", "/seed/config").
		WithForm("key", "world_writable", "value", "true").
		WithHeader("X-Bootstrap", BootstrapToken))
	if !resp.OK() {
		return fmt.Errorf("misconfig: %s", resp.Body)
	}
	s.AdminMistakeReqID = resp.Header[wire.HdrRequestID]

	for _, target := range []string{"sheetA", "sheetB"} {
		r := s.TB.Call("dir", setCell("acl:"+target+":"+AttackerUser, "rw", AttackerUser, AttackerToken))
		if !r.OK() {
			return fmt.Errorf("attacker ACL self-grant on %s: %s", target, r.Body)
		}
	}
	for _, target := range []string{"sheetA", "sheetB"} {
		r := s.TB.Call(target, setCell("budget", "0wned", AttackerUser, AttackerToken))
		if !r.OK() {
			return fmt.Errorf("attacker write to %s: %s", target, r.Body)
		}
		s.CorruptReqIDs = append(s.CorruptReqIDs, r.Header[wire.HdrRequestID])
	}
	return nil
}

// RunCorruptSyncAttack performs the third scenario: as in the lax-permission
// attack, but the attacker corrupts only a synced cell on A, and A's sync
// script spreads the corruption to B.
func (s *SheetScenario) RunCorruptSyncAttack() error {
	s.TB.MustCall("sheetA", setCell("shared:plan", "Q3 roadmap", LegitUser, LegitToken))
	resp := s.TB.Call("dir", setCell("acl:sheetA:"+AttackerUser, "rw", AdminUser, AdminToken))
	if !resp.OK() {
		return fmt.Errorf("admin ACL update: %s", resp.Body)
	}
	s.AdminMistakeReqID = resp.Header[wire.HdrRequestID]

	r := s.TB.Call("sheetA", setCell("shared:plan", "0wned plan", AttackerUser, AttackerToken))
	if !r.OK() {
		return fmt.Errorf("attacker write: %s", r.Body)
	}
	s.CorruptReqIDs = append(s.CorruptReqIDs, r.Header[wire.HdrRequestID])
	if v, _ := s.cellValue("sheetB", "shared:plan"); v != "0wned plan" {
		return fmt.Errorf("sync should have spread corruption to B, got %q", v)
	}
	return nil
}

// Repair cancels the administrator's mistake on the directory and settles
// repair propagation.
func (s *SheetScenario) Repair() error {
	if _, err := s.Dir.ApplyLocal(cancelAction(s.AdminMistakeReqID)); err != nil {
		return err
	}
	if s.AdminMistakeReqID2 != "" {
		if _, err := s.Dir.ApplyLocal(cancelAction(s.AdminMistakeReqID2)); err != nil {
			return err
		}
	}
	s.TB.Settle(20)
	return nil
}

func (s *SheetScenario) cellValue(svc, cell string) (string, bool) {
	resp := s.TB.Call(svc, getCell(cell))
	if !resp.OK() {
		return "", false
	}
	return string(resp.Body), true
}

// Verify checks that the attacker's privileges and corruption are gone from
// every online service while legitimate state survives.
func (s *SheetScenario) Verify() []string {
	var problems []string
	for _, svc := range []string{"sheetA", "sheetB"} {
		if s.TB.Bus.Offline(svc) {
			continue
		}
		if _, ok := s.TB.Ctrls[svc].Svc.Store.Get(aclKey(AttackerUser)); ok {
			problems = append(problems, svc+": attacker still in ACL")
		}
		if v, ok := s.cellValue(svc, "budget"); ok && v == "0wned" {
			problems = append(problems, svc+": budget still corrupted")
		}
		if v, ok := s.cellValue(svc, "shared:plan"); ok && v == "0wned plan" {
			problems = append(problems, svc+": synced cell still corrupted")
		}
	}
	if v, ok := s.cellValue("sheetA", "budget"); ok && v != s.ExpectedBudgetA && v != "0wned" {
		problems = append(problems, "sheetA: legitimate budget value lost: "+v)
	}
	return problems
}
