package repairlog

import (
	"fmt"
	"testing"

	"aire/internal/vdb"
	"aire/internal/wire"
)

func benchRecord(i int) *Record {
	r := &Record{
		ID:  fmt.Sprintf("svc-req-%d", i),
		TS:  int64(i+1) * 1000,
		Req: wire.NewRequest("POST", "/ask").WithForm("title", "benchmark question", "body", "some body text that is fairly typical in length for a post"),
	}
	r.Resp = wire.NewResponse(200, "q-svc-req-1.0")
	for j := 0; j < 6; j++ {
		r.Reads = append(r.Reads, ReadDep{Key: vdb.Key{Model: "question", ID: fmt.Sprintf("q%d", j)}, TS: int64(j), Hash: uint64(j) + 1})
	}
	r.Writes = []WriteDep{{Key: vdb.Key{Model: "question", ID: "q1"}, TS: int64(i+1) * 1000}}
	r.Nondet = []Nondet{{Kind: "now", Value: 12345}}
	return r
}

// BenchmarkAppendCompressed measures the per-request logging cost with
// compression-ratio sampling (the production configuration).
func BenchmarkAppendCompressed(b *testing.B) {
	l := New(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(l.AppBytes())/float64(l.Samples()), "bytes/rec")
}

// BenchmarkAppendExact gzips every record — the worst-case inline cost.
func BenchmarkAppendExact(b *testing.B) {
	l := New(true)
	l.SetSampleRate(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCallLog builds a log of n records, each with one Aire-identified
// call to "peer".
func benchCallLog(n int) *Log {
	l := New(false)
	for i := 0; i < n; i++ {
		r := benchRecord(i)
		r.Calls = []Call{{Target: "peer", RespID: fmt.Sprintf("svc-resp-%d", i), RemoteReqID: fmt.Sprintf("peer-req-%d", i)}}
		l.Append(r)
	}
	return l
}

// BenchmarkFindByCallRespID measures the indexed O(1) lookup against the
// retained pre-index reference (scan every call of every record). The
// lookup runs on the hot incoming path for every replace_response delivery
// and every replace/create acknowledgment.
func BenchmarkFindByCallRespID(b *testing.B) {
	l := benchCallLog(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.FindByCallRespID("svc-resp-1999")
	}
}

func BenchmarkFindByCallRespIDLinear(b *testing.B) {
	l := benchCallLog(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.FindByCallRespIDLinear("svc-resp-1999")
	}
}

// BenchmarkNeighborCalls measures the binary-search create-anchor lookup
// against the retained full-timeline reference.
func BenchmarkNeighborCalls(b *testing.B) {
	l := benchCallLog(2000)
	ts := int64(1000 * 1000) // middle of the timeline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.NeighborCalls("peer", ts)
	}
}

func BenchmarkNeighborCallsLinear(b *testing.B) {
	l := benchCallLog(2000)
	ts := int64(1000 * 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.NeighborCallsLinear("peer", ts)
	}
}
