package vclock

import (
	"testing"
	"testing/quick"
)

func TestNextMonotonic(t *testing.T) {
	var c Clock
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		ts := c.Next()
		if ts <= prev {
			t.Fatalf("Next not monotonic: %d after %d", ts, prev)
		}
		prev = ts
	}
}

func TestBetweenMidpoint(t *testing.T) {
	var c Clock
	a, b := c.Next(), c.Next()
	mid, err := c.Between(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mid <= a || mid >= b {
		t.Fatalf("Between(%d,%d) = %d not strictly inside", a, b, mid)
	}
}

func TestBetweenRepeatedInsertion(t *testing.T) {
	var c Clock
	a, b := c.Next(), c.Next()
	lo := a
	// The stride guarantees ~20 generations of midpoint insertion.
	for i := 0; i < 19; i++ {
		mid, err := c.Between(lo, b)
		if err != nil {
			t.Fatalf("insertion %d failed: %v", i, err)
		}
		if mid <= lo || mid >= b {
			t.Fatalf("insertion %d out of range", i)
		}
		lo = mid
	}
}

func TestBetweenExhaustion(t *testing.T) {
	var c Clock
	if _, err := c.Between(5, 6); err != ErrExhausted {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
}

func TestBetweenOpenEnd(t *testing.T) {
	var c Clock
	a := c.Next()
	ts, err := c.Between(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= a {
		t.Fatalf("open-ended Between must exceed before anchor: %d <= %d", ts, a)
	}
	if nxt := c.Next(); nxt <= ts {
		t.Fatalf("clock must advance past open-ended insertion: %d <= %d", nxt, ts)
	}
}

func TestObserve(t *testing.T) {
	var c Clock
	c.Observe(10 * Stride)
	if ts := c.Next(); ts <= 10*Stride {
		t.Fatalf("Next after Observe must exceed observed value, got %d", ts)
	}
	c.Observe(1) // lower than current: no effect
	if c.Now() <= 10*Stride {
		t.Fatal("Observe of older timestamp must not rewind the clock")
	}
}

func TestBetweenPropertyStrict(t *testing.T) {
	f := func(a, gap uint16) bool {
		var c Clock
		lo := int64(a)
		hi := lo + int64(gap)
		mid, err := c.Between(lo, hi)
		if hi-lo < 2 {
			return err == ErrExhausted
		}
		return err == nil && mid > lo && mid < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
