// Package orm provides the model layer applications use to store state,
// playing the role Django's ORM plays in the paper's prototype (§6).
//
// Every read and write goes through a Tx bound to the currently executing
// request. The Tx transparently versions writes in the underlying vdb store
// and records read, scan, and write dependencies into the request's repair
// log record — the two interposition points Aire needs ("we modified the
// Django ORM to intercept the application's reads and writes to model
// objects").
//
// Models registered as versioned correspond to the paper's
// AppVersionedModel: their objects are immutable, are not rolled back during
// repair, and carry no dependency tracking (§6, "Repair for a versioned
// API").
package orm

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"aire/internal/repairlog"
	"aire/internal/vdb"
)

// Schema records the models an application declared.
type Schema struct {
	mu        sync.RWMutex
	models    map[string]bool
	versioned map[string]bool
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{models: make(map[string]bool), versioned: make(map[string]bool)}
}

// Register declares a regular (rollback-able, dependency-tracked) model.
func (s *Schema) Register(model string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[model] = true
}

// RegisterVersioned declares an AppVersionedModel: immutable objects exempt
// from rollback and dependency tracking.
func (s *Schema) RegisterVersioned(model string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[model] = true
	s.versioned[model] = true
}

// IsVersioned reports whether the model was registered as versioned.
func (s *Schema) IsVersioned(model string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versioned[model]
}

// Models returns the sorted names of all registered models.
func (s *Schema) Models() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for m := range s.models {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Obj is one model object: an ID plus string-valued fields.
type Obj struct {
	ID string
	F  map[string]string
}

// Get returns the named field ("" if absent).
func (o Obj) Get(field string) string { return o.F[field] }

// Int returns the named field parsed as an integer (0 if absent/invalid).
func (o Obj) Int(field string) int {
	n, _ := strconv.Atoi(o.F[field])
	return n
}

// Bool returns whether the named field equals "true".
func (o Obj) Bool(field string) bool { return o.F[field] == "true" }

// Fields builds a field map from key/value pairs.
func Fields(kv ...string) map[string]string {
	if len(kv)%2 != 0 {
		panic("orm: Fields requires key/value pairs")
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// Deps is the sink a Tx records dependencies into; it aliases the slices of
// the executing request's log record.
type Deps struct {
	Reads  []repairlog.ReadDep
	Scans  []repairlog.ScanDep
	Writes []repairlog.WriteDep
}

// Tx is a request-scoped handle on the versioned store.
//
// Reads observe the store as of At (the executing request's logical
// timestamp); writes create versions at At attributed to ReqID. During
// replay, a write whose key has newer versions first rolls those versions
// back — the writers that produced them are re-executed later by the repair
// engine (rollback-redo, §2.1).
type Tx struct {
	Store    *vdb.Store
	Schema   *Schema
	At       int64
	ReqID    string
	ReadOnly bool
	// Deps, when non-nil, accumulates dependency records.
	Deps *Deps
}

// Snapshot returns a read-only Tx at timestamp at, used by repair access
// control to inspect state as of the original request (§4).
func Snapshot(store *vdb.Store, schema *Schema, at int64) *Tx {
	return &Tx{Store: store, Schema: schema, At: at, ReadOnly: true}
}

// Get fetches an object, recording a read dependency.
func (tx *Tx) Get(model, id string) (Obj, bool) {
	k := vdb.Key{Model: model, ID: id}
	v, ok := tx.Store.GetAt(k, tx.At)
	// Reads of the request's own earlier writes carry no external
	// dependency: deterministic replay regenerates them identically.
	if tx.Deps != nil && !tx.Schema.IsVersioned(model) && !(ok && v.ReqID == tx.ReqID) {
		dep := repairlog.ReadDep{Key: k}
		if ok {
			dep.TS = v.TS
			dep.Hash = v.Hash()
		}
		tx.Deps.Reads = append(tx.Deps.Reads, dep)
	}
	if !ok {
		return Obj{}, false
	}
	return Obj{ID: id, F: v.Fields}, true
}

// Put writes an object, recording a write dependency. For versioned models
// the object becomes immutable.
func (tx *Tx) Put(model, id string, fields map[string]string) error {
	if tx.ReadOnly {
		return fmt.Errorf("orm: write to %s/%s in read-only transaction", model, id)
	}
	k := vdb.Key{Model: model, ID: id}
	if tx.Schema.IsVersioned(model) {
		return tx.Store.PutImmutable(k, fields, tx.At, tx.ReqID)
	}
	// Rollback-redo: writing "at" tx.At removes any newer versions; their
	// writers fail their write-dependency check and re-execute (§2.1).
	tx.Store.Rollback(k, tx.At)
	if err := tx.Store.Put(k, fields, tx.At, tx.ReqID); err != nil {
		return err
	}
	if tx.Deps != nil {
		tx.Deps.Writes = append(tx.Deps.Writes, repairlog.WriteDep{Key: k, TS: tx.At})
	}
	return nil
}

// Delete removes an object (tombstone), recording a write dependency.
func (tx *Tx) Delete(model, id string) error {
	if tx.ReadOnly {
		return fmt.Errorf("orm: delete of %s/%s in read-only transaction", model, id)
	}
	if tx.Schema.IsVersioned(model) {
		return fmt.Errorf("orm: cannot delete immutable versioned object %s/%s", model, id)
	}
	k := vdb.Key{Model: model, ID: id}
	tx.Store.Rollback(k, tx.At)
	if err := tx.Store.Delete(k, tx.At, tx.ReqID); err != nil {
		return err
	}
	if tx.Deps != nil {
		tx.Deps.Writes = append(tx.Deps.Writes, repairlog.WriteDep{Key: k, TS: tx.At})
	}
	return nil
}

// Update mutates an existing object in place via fn; it is a Get followed by
// a Put and records both dependencies. It reports whether the object
// existed.
func (tx *Tx) Update(model, id string, fn func(map[string]string)) (bool, error) {
	o, ok := tx.Get(model, id)
	if !ok {
		return false, nil
	}
	fields := make(map[string]string, len(o.F))
	for k, v := range o.F {
		fields[k] = v
	}
	fn(fields)
	return true, tx.Put(model, id, fields)
}

// List returns all live objects of the model at tx.At, sorted by ID,
// recording a scan dependency over the model.
func (tx *Tx) List(model string) []Obj {
	if tx.Deps != nil && !tx.Schema.IsVersioned(model) {
		tx.Deps.Scans = append(tx.Deps.Scans, repairlog.ScanDep{
			Model: model,
			Hash:  tx.Store.ScanHashAtExcluding(model, tx.At, tx.ReqID),
		})
	}
	ids := tx.Store.IDsAt(model, tx.At)
	out := make([]Obj, 0, len(ids))
	for _, id := range ids {
		v, ok := tx.Store.GetAt(vdb.Key{Model: model, ID: id}, tx.At)
		if !ok {
			continue
		}
		out = append(out, Obj{ID: id, F: v.Fields})
	}
	return out
}

// Select returns the objects of the model matching pred, recording a scan
// dependency (membership of the result can change whenever the model
// changes).
func (tx *Tx) Select(model string, pred func(Obj) bool) []Obj {
	all := tx.List(model)
	out := all[:0:0]
	for _, o := range all {
		if pred(o) {
			out = append(out, o)
		}
	}
	return out
}

// First returns the first object matching pred in ID order.
func (tx *Tx) First(model string, pred func(Obj) bool) (Obj, bool) {
	for _, o := range tx.Select(model, pred) {
		return o, true
	}
	return Obj{}, false
}
