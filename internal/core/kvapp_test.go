package core

import (
	"fmt"
	"strings"

	"aire/internal/orm"
	"aire/internal/transport"
	"aire/internal/web"
	"aire/internal/wire"
)

// kvApp is a small versioned key-value web service used throughout the core
// tests. Its routes:
//
//	POST /put?key&val[&user]  — write a key; mirrors the write to the mirror
//	                            peer (if configured) unless val begins "local:"
//	GET  /get?key             — read a key
//	GET  /sum                 — list-scan all keys, concatenating values
//	POST /fetch?key           — call the upstream peer's /get and cache the
//	                            result locally (the reader side of Figure 2)
//	POST /email               — external effect summarizing all keys
type kvApp struct {
	name string
	// mirror, when set, receives a copy of every /put.
	mirror string
	// upstream, when set, is where /fetch reads from.
	upstream string
	// authz, when set, overrides the default allow-all policy.
	authz func(ac AuthzRequest) bool
	// notes collects notifications (Notifier implementation).
	notes []Notification
}

func (a *kvApp) Name() string { return a.name }

func (a *kvApp) Authorize(ac AuthzRequest) bool {
	if a.authz != nil {
		return a.authz(ac)
	}
	return true
}

func (a *kvApp) Notify(n Notification) { a.notes = append(a.notes, n) }

func (a *kvApp) Register(svc *web.Service) {
	svc.Schema.Register("kv")
	svc.Schema.Register("cache")

	svc.Router.Handle("POST", "/put", func(c *web.Ctx) wire.Response {
		key, val := c.Form("key"), c.Form("val")
		if key == "" {
			return c.Error(400, "missing key")
		}
		if err := c.DB.Put("kv", key, orm.Fields("val", val, "writer", c.Form("user"))); err != nil {
			return c.Error(500, err.Error())
		}
		if a.mirror != "" && !strings.HasPrefix(val, "local:") {
			c.Call(a.mirror, wire.NewRequest("POST", "/put").WithForm("key", key, "val", val, "user", c.Form("user")))
		}
		return c.OK("stored " + key)
	})

	svc.Router.Handle("GET", "/get", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get("kv", c.Form("key"))
		if !ok {
			return c.Error(404, "no such key")
		}
		return c.OK(o.Get("val"))
	})

	svc.Router.Handle("GET", "/sum", func(c *web.Ctx) wire.Response {
		var b strings.Builder
		for _, o := range c.DB.List("kv") {
			fmt.Fprintf(&b, "%s=%s;", o.ID, o.Get("val"))
		}
		return c.OK(b.String())
	})

	svc.Router.Handle("POST", "/fetch", func(c *web.Ctx) wire.Response {
		key := c.Form("key")
		resp := c.Call(a.upstream, wire.NewRequest("GET", "/get").WithForm("key", key))
		if !resp.OK() {
			return c.Error(502, "upstream: "+string(resp.Body))
		}
		if err := c.DB.Put("cache", key, orm.Fields("val", string(resp.Body))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("cached " + string(resp.Body))
	})

	svc.Router.Handle("POST", "/email", func(c *web.Ctx) wire.Response {
		var b strings.Builder
		for _, o := range c.DB.List("kv") {
			fmt.Fprintf(&b, "%s=%s;", o.ID, o.Get("val"))
		}
		c.Effect("email", "daily summary: "+b.String())
		return c.OK("sent")
	})
}

// testbed wires controllers onto a bus and provides helpers.
type testbed struct {
	bus   *transport.Bus
	ctrls map[string]*Controller
}

func newTestbed() *testbed {
	return &testbed{bus: transport.NewBus(), ctrls: map[string]*Controller{}}
}

func (tb *testbed) add(app App, cfg Config) *Controller {
	c := NewController(app, tb.bus, cfg)
	tb.ctrls[app.Name()] = c
	tb.bus.Register(app.Name(), c)
	return c
}

// settle pumps every controller's outgoing queue until the system is
// quiescent (no deliverable messages remain) or maxRounds passes elapse.
func (tb *testbed) settle(maxRounds int) {
	for i := 0; i < maxRounds; i++ {
		progressed := false
		for _, c := range tb.ctrls {
			if d, _ := c.Flush(); d > 0 {
				progressed = true
			}
			if r, _ := c.ProcessIncoming(); r != nil {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// call sends an external-client request (no Aire headers, unauthenticated).
func (tb *testbed) call(svc string, req wire.Request) wire.Response {
	resp, err := tb.bus.Call("", svc, req)
	if err != nil {
		return wire.NewResponse(wire.StatusTimeout, err.Error())
	}
	return resp
}

func put(key, val string) wire.Request {
	return wire.NewRequest("POST", "/put").WithForm("key", key, "val", val)
}

func get(key string) wire.Request {
	return wire.NewRequest("GET", "/get").WithForm("key", key)
}
