package transport

import (
	"errors"
	"net/http/httptest"
	"testing"

	"aire/internal/wire"
)

func echo(name string) HandlerFunc {
	return func(from string, req wire.Request) wire.Response {
		return wire.NewResponse(200, name+" saw "+from+" "+req.Form["msg"])
	}
}

func TestBusDelivery(t *testing.T) {
	b := NewBus()
	b.Register("b", echo("b"))
	resp, err := b.Call("a", "b", wire.NewRequest("POST", "/x").WithForm("msg", "hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "b saw a hi" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestBusUnknownService(t *testing.T) {
	b := NewBus()
	if _, err := b.Call("a", "nope", wire.NewRequest("GET", "/")); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("want ErrUnknownService, got %v", err)
	}
}

func TestBusOffline(t *testing.T) {
	b := NewBus()
	b.Register("b", echo("b"))
	b.SetOffline("b", true)
	if _, err := b.Call("a", "b", wire.NewRequest("GET", "/")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	if !b.Offline("b") {
		t.Fatal("Offline not reported")
	}
	b.SetOffline("b", false)
	if _, err := b.Call("a", "b", wire.NewRequest("GET", "/")); err != nil {
		t.Fatalf("service back online should accept calls: %v", err)
	}
	delivered, dropped := b.Stats()
	if delivered != 1 || dropped != 1 {
		t.Fatalf("stats = %d delivered, %d dropped", delivered, dropped)
	}
}

func TestNotifierURLRoundTrip(t *testing.T) {
	u := NotifierURL("askbot")
	svc, path, err := ParseNotifierURL(u)
	if err != nil {
		t.Fatal(err)
	}
	if svc != "askbot" || path != "/aire/notify" {
		t.Fatalf("parsed %q %q", svc, path)
	}
	if _, _, err := ParseNotifierURL("http://x/y"); err == nil {
		t.Fatal("non-aire URL must be rejected")
	}
}

func TestHTTPAdapterRoundTrip(t *testing.T) {
	h := HandlerFunc(func(from string, req wire.Request) wire.Response {
		resp := wire.NewResponse(200, "from="+from+" k="+req.Form["k"]+" hdr="+req.Header[wire.HdrResponseID])
		resp.Header[wire.HdrRequestID] = "srv-req-1"
		return resp
	})
	ts := httptest.NewServer(NewHTTPHandler(h))
	defer ts.Close()

	caller := &HTTPCaller{BaseURLs: map[string]string{"srv": ts.URL}}
	req := wire.NewRequest("POST", "/op").WithForm("k", "v").WithHeader(wire.HdrResponseID, "cli-resp-1")
	resp, err := caller.Call("cli", "srv", req)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "from=cli k=v hdr=cli-resp-1" {
		t.Fatalf("body = %q", resp.Body)
	}
	if resp.Header[wire.HdrRequestID] != "srv-req-1" {
		t.Fatal("Aire response headers must survive the HTTP adapter")
	}
}

// TestHTTPAdapterDeliveryHeaders: the exactly-once session headers must
// survive the net/http canonicalization round-trip in both directions —
// the same spot where Aire-Notifier-URL silently went missing before the
// wireHeaderKeys mapping existed. A delivery header the server-side
// handler cannot read under its wire spelling would disable dedup over
// real sockets while every bus test passes.
func TestHTTPAdapterDeliveryHeaders(t *testing.T) {
	h := HandlerFunc(func(from string, req wire.Request) wire.Response {
		resp := wire.NewResponse(200,
			req.Header[wire.HdrDeliveryID]+"|"+req.Header[wire.HdrGeneration]+"|"+req.Header[wire.HdrOrigin])
		resp.Header[wire.HdrDeliveryID] = req.Header[wire.HdrDeliveryID]
		return resp
	})
	ts := httptest.NewServer(NewHTTPHandler(h))
	defer ts.Close()

	caller := &HTTPCaller{BaseURLs: map[string]string{"srv": ts.URL}}
	req := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrDeliveryID, "a-dlv-7",
		wire.HdrGeneration, "3",
		wire.HdrOrigin, "a",
	)
	resp, err := caller.Call("a", "srv", req)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "a-dlv-7|3|a" {
		t.Fatalf("server saw %q, want %q — delivery headers lost in request canonicalization", resp.Body, "a-dlv-7|3|a")
	}
	if resp.Header[wire.HdrDeliveryID] != "a-dlv-7" {
		t.Fatal("delivery headers lost in response canonicalization")
	}
}

func TestHTTPCallerUnknownAndUnavailable(t *testing.T) {
	caller := &HTTPCaller{BaseURLs: map[string]string{"gone": "http://127.0.0.1:1"}}
	if _, err := caller.Call("cli", "nope", wire.NewRequest("GET", "/")); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("want ErrUnknownService, got %v", err)
	}
	if _, err := caller.Call("cli", "gone", wire.NewRequest("GET", "/")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}
