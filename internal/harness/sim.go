package harness

// Deterministic fault-injection simulation (the §3.3 convergence argument
// as a searchable seed space). One seed fully determines a run: the
// workload, which requests are attacked and how they are repaired, every
// injected fault (via internal/simnet), every partition window, and every
// crash-restart point. The oracle is the paper's correctness claim: after
// repair propagates through the unreliable fabric and the system
// quiesces, every service's state must equal a fault-free reference
// re-execution of the same workload with the attacks removed (cancels) or
// corrected in place (replaces).
//
// Faults apply to the repair plane only (see simnet): the live workload
// runs clean in both worlds, so any divergence is the repair protocol's
// fault, not the workload's.

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"aire/internal/core"
	"aire/internal/dsched"
	"aire/internal/obs"
	"aire/internal/orm"
	"aire/internal/persist"
	"aire/internal/simnet"
	"aire/internal/transport"
	"aire/internal/vdb"
	"aire/internal/wal"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// SimConfig parameterizes one simulation run. The zero value of every
// field except Seed is replaced by a sensible default.
type SimConfig struct {
	// Seed determines the entire run.
	Seed int64
	// Services is how many Aire services to stand up (≥ 2).
	Services int
	// Shards partitions every attacked-world service into N shard
	// controllers — each with its own store, repair log, dedup inbox,
	// pump, and (under WAL) its own log and recovery — behind a
	// core.ShardedController router registered under the base name.
	// 0 or 1 is the unsharded legacy path, byte-identical to the
	// pre-shard harness (same digests, same schedules). The golden world
	// always runs unsharded: the oracle then states that converged state
	// is shard-count-invariant.
	Shards int
	// Topology is "chain" (s0 → s1 → … , each put forwarded downstream) or
	// "fanout" (s0 mirrors every put to all other services).
	Topology string
	// Ops is the number of workload steps (puts/gets/scans via s0).
	Ops int
	// Repairs is how many attacked puts are repaired (Cancel or Replace),
	// capped by the number of puts the workload happens to contain.
	Repairs int
	// Rerepairs is how many of the replace-repaired puts receive a second,
	// later replacement (repair-of-repair). Successive repairs of the same
	// request supersede one another in the outgoing queue, so this is the
	// workload that puts superseded content on the wire — the
	// stale-redelivery hazard a delayed fault turns into a regression
	// unless generations gate application.
	Rerepairs int
	// Creates is how many repair `create` operations the schedule issues:
	// each inserts a new non-idempotent /add request into the head
	// service's past, which propagates downstream as wire-level creates —
	// the operation a duplicated delivery double-mints unless the dedup
	// inbox re-acknowledges it.
	Creates int
	// DisableDedup turns off every service's exactly-once dedup inbox
	// (core.Config.DisableDedupInbox), restoring the at-least-once
	// behavior. Hazard-demonstration tests use it to show the stale and
	// dupcreate profiles genuinely fire their fault.
	DisableDedup bool
	// VersionVectors turns on the anti-entropy version-vector layer
	// (core.Config.VersionVectors): every pump carrier piggybacks the
	// sender's acknowledged prefix and frontier for its (origin, peer)
	// pair, the receive-side dedup inbox compacts acknowledged entries and
	// classifies post-eviction arrivals exactly, and a wholly-lost
	// delivery is recovered through the gap-NACK / re-offer path instead
	// of waiting out (or outliving) the backoff schedule. The lostwave
	// profile sets it; run that profile with it off to watch convergence
	// genuinely stall.
	VersionVectors bool
	// InboxCap bounds the dedup inbox's per-origin entry count
	// (core.Config.InboxCap; 0 keeps the core default). The anti-entropy
	// tests shrink it to a handful of entries to prove that acked-prefix
	// compaction — not LRU headroom — is what keeps exactly-once exact.
	InboxCap int
	// LinearScan runs every repair engine with the retained pre-index
	// full-timeline walk (warp.Config.LinearScan). The index-equivalence
	// tests run each seed both ways and require identical results.
	LinearScan bool
	// Obs attaches one shared observability registry (internal/obs) to the
	// attacked world: every controller records metrics and wave spans into
	// it, crash-restarted incarnations re-attach it (the registry lives in
	// the world's controller config), and the run's SimResult carries the
	// reconstructed WaveStats plus a final metrics snapshot.
	// Instrumentation is digest-neutral: a ScheduledPump seed produces
	// byte-identical SchedTrace/StateDigest with Obs on or off.
	Obs bool
	// BatchIncoming runs every attacked-world service in batch-incoming
	// mode (core.Config.BatchIncoming): repair deliveries are accepted
	// into the incoming inbox and applied later by ProcessIncoming, which
	// the driver sweeps every BatchEvery-th pulse. Repair then makes
	// progress that no terminal delivery outcome reflects — the fault
	// class the widened quiesce progress signal exists for.
	BatchIncoming bool
	// BatchEvery is the pulse period of the ProcessIncoming sweep
	// (default 2).
	BatchEvery int
	// narrowQuiesce restores the pre-observability quiesce signal:
	// progress is terminal delivery outcomes only, and the done-check
	// ignores accepted-but-unapplied batches. The quiesce regression test
	// sets it to prove a batch-incoming run genuinely needs the widened
	// signal.
	narrowQuiesce bool
	// ScheduledPump runs the attacked world's repair delivery on the real
	// background pump (core.StartPump) instead of the serial Flush loop,
	// with every pump loop, delivery worker, and the workload itself
	// multiplexed as cooperative tasks of a deterministic scheduler
	// (internal/dsched): a seeded rng picks the next runnable task at
	// every yield point, and backoff sleeps elapse on the virtual clock.
	// The run explores concurrent pump interleavings — supersedes landing
	// mid-delivery, workers of different services overlapping, shutdown
	// racing claims — while remaining a pure function of the seed.
	ScheduledPump bool
	// killCrashes makes every crash event a scheduler task kill instead of
	// a graceful pump shutdown (ScheduledPump + WAL only): the crashed
	// service's pump and delivery-worker tasks are killed at whatever
	// yield point they are parked — mid-pass, claims in flight, deferred
	// cleanup never run — and the service is rebuilt purely from durable
	// state. The stopPump path models a clean restart between delivery
	// passes; this models the crash landing inside the claim window.
	killCrashes bool
	// faultUngatedReconcile injects the historical (pre-PR-1) pump bug:
	// reconcile without the per-message generation gate, so a message
	// superseded while its old content is in flight is dropped as
	// delivered. Regression tests set it to prove the deterministic
	// scheduler rediscovers the race on a fixed seed.
	faultUngatedReconcile bool
	// inspect, when non-nil, is called with the attacked world after it
	// quiesces (before the golden run), with no requests in flight; the
	// equivalence tests use it to cross-check the secondary indexes
	// against their linear-scan references on an organically grown state.
	inspect func(w *simWorld)
	// Faults are the per-call repair-plane fault probabilities.
	Faults simnet.FaultPlan
	// PartitionRate is the per-step probability of starting a partition (a
	// random bipartition of the services, healed a few steps later).
	PartitionRate float64
	// CrashRate is the per-step probability of crash-restarting a random
	// service: its controller is torn down and rebuilt from an
	// internal/persist snapshot mid-repair.
	CrashRate float64
	// WAL backs every attacked-world service with an on-disk write-ahead
	// log (internal/wal). Crash events then discard the controller AND its
	// in-memory state, rebuilding it from checkpoint + WAL replay
	// (persist.Recover) instead of the in-memory snapshot handoff. Every
	// other crash of a given service also writes a checkpoint and truncates
	// the replayed segments, so later recoveries exercise the
	// snapshot-plus-tail path, not just pure replay.
	WAL bool
	// WALFsync is the fsync policy ("every", "interval", "none"; default
	// "every"). Under "every" a power-loss crash loses no committed state;
	// under "none" the whole unsynced tail is lost — the fsync-lag
	// durability tests assert both.
	WALFsync string
	// WALInterval is the commit count between fsyncs under "interval".
	WALInterval int
	// WALPowerLoss makes each crash a power failure: the WAL's unsynced
	// tail is truncated (wal.Writer.CrashLose) before recovery. Without it
	// the crash is a process kill — buffered appends survive the way the
	// OS page cache outlives a dead process.
	WALPowerLoss bool
	// WALDir overrides the WAL base directory (default: a fresh temp
	// directory, removed when the run ends).
	WALDir string
	// MaxRounds bounds the post-workload quiesce loop.
	MaxRounds int
}

func (cfg SimConfig) withDefaults() SimConfig {
	if cfg.Services < 2 {
		cfg.Services = 3
	}
	if cfg.Topology == "" {
		cfg.Topology = "chain"
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 30
	}
	if cfg.Repairs <= 0 {
		cfg.Repairs = 3
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 100
	}
	return cfg
}

// SimResult reports one simulation run. Two runs of the same SimConfig are
// identical in every field — the determinism tests rely on it.
type SimResult struct {
	Seed           int64
	Ops            int
	RepairCount    int
	CreateCount    int
	CrashCount     int
	PartitionCount int
	// Rounds is how many quiesce rounds the repair plane needed after the
	// workload finished.
	Rounds int
	// FaultCounts counts injected faults by class; Trace is the full fault
	// schedule (reproducing a failing seed reproduces it verbatim).
	FaultCounts map[string]int
	Trace       []string
	// Failures lists oracle violations; Passed means none.
	Failures []string
	Passed   bool
	// SchedSteps and SchedTrace report the deterministic scheduler's run
	// (ScheduledPump only): how many scheduling steps executed, and which
	// task ran at each. A failing seed's schedule replays verbatim.
	SchedSteps int
	SchedTrace []string
	// InboxHighWater is the largest per-origin dedup-inbox entry count any
	// service's final incarnation reached — the memory bound the vector
	// compaction tests assert on. Deterministic per seed, but kept out of
	// StateDigest so pre-vector digests stay byte-identical.
	InboxHighWater int
	// OracleDigest fingerprints ONLY the converged per-service state (the
	// union of shard states under a sharded run), excluding the fault and
	// task schedules. A passing run's OracleDigest is therefore
	// shard-count-invariant — the TestShardInvariantDigest property —
	// while StateDigest stays the full run identity (schedule included),
	// which legitimately differs across shard counts.
	OracleDigest uint64
	// StateDigest fingerprints the converged state plus the fault schedule
	// (and, under ScheduledPump, the task schedule).
	StateDigest uint64
	// WaveStats reconstructs each repair wave's propagation — origin, max
	// hop depth, per-hop latency — purely from the Aire-Trace-* context
	// the spans carried (Obs runs only). Latencies are clock durations, so
	// WaveStats stays out of StateDigest.
	WaveStats []obs.WaveStat
	// ObsMetrics is the registry's final snapshot (Obs runs only).
	ObsMetrics *obs.Snapshot
}

// simOp is one workload step.
type simOp struct {
	kind int // 0 put, 1 get, 2 sum, 3 add (golden-world created requests)
	key  string
	val  string // put: value; add: delta
}

// simRepair repairs the put at op index opIdx: cancel it, or replace its
// value with newVal.
type simRepair struct {
	opIdx  int
	cancel bool
	newVal string
}

// simCreate inserts a new /add request into the head service's past at
// schedule step `step`, anchored after the put at op index `anchor`. Keys
// are unique per create and disjoint from the put key space, so the final
// state is position-independent — but /add is not idempotent, so a
// double-applied create diverges.
type simCreate struct {
	anchor int
	step   int
	key    string
	delta  string
}

// simEvent is one step of the generated schedule.
type simEvent struct {
	kind   int // event kinds below
	op     int // evExec: op index
	repair simRepair
	create int        // evCreate: index into the creates list
	crash  string     // evCrash: service to crash-restart
	groups [][]string // evPartition
}

const (
	evExec = iota
	evRepair
	evCreate
	evCrash
	evPartition
	evHeal
)

const (
	simFrozenTime   = int64(1_380_000_000)
	simClockStart   = int64(1_700_000_000)
	simPulseStep    = 25 * time.Millisecond
	simBackoffBase  = 50 * time.Millisecond
	simBackoffMax   = 400 * time.Millisecond
	simPartitionMin = 2 // partition duration in steps
	simPartitionVar = 4
)

// simApp is the workload application: a key-value service that forwards
// every write downstream and echoes the stored value in its response, so
// Replace repairs change responses and exercise the replace_response
// notify/fetch handshake across the faulted fabric, not just the repair
// call path.
type simApp struct {
	name  string
	peers []string
}

func (a *simApp) Name() string                        { return a.name }
func (a *simApp) Authorize(ac core.AuthzRequest) bool { return true }

func (a *simApp) Register(svc *web.Service) {
	svc.Schema.Register("kv")
	svc.Router.Handle("POST", "/put", func(c *web.Ctx) wire.Response {
		if err := c.DB.Put("kv", c.Form("key"), orm.Fields("val", c.Form("val"))); err != nil {
			return c.Error(500, err.Error())
		}
		for _, p := range a.peers {
			c.Call(p, wire.NewRequest("POST", "/put").
				WithForm("key", c.Form("key"), "val", c.Form("val")))
		}
		return c.OK(c.Form("val"))
	})
	// /add is deliberately *not* idempotent: it increments the stored
	// value by delta and forwards the delta downstream. Created requests
	// use it so a duplicate-create (a re-delivered create whose first
	// response was lost minting a second synthetic request) is visible to
	// the state oracle — a double-applied put would converge anyway.
	svc.Router.Handle("POST", "/add", func(c *web.Ctx) wire.Response {
		cur := 0
		if o, ok := c.DB.Get("kv", c.Form("key")); ok {
			cur, _ = strconv.Atoi(o.Get("val"))
		}
		d, _ := strconv.Atoi(c.Form("delta"))
		val := strconv.Itoa(cur + d)
		if err := c.DB.Put("kv", c.Form("key"), orm.Fields("val", val)); err != nil {
			return c.Error(500, err.Error())
		}
		for _, p := range a.peers {
			c.Call(p, wire.NewRequest("POST", "/add").
				WithForm("key", c.Form("key"), "delta", c.Form("delta")))
		}
		return c.OK(val)
	})
	svc.Router.Handle("GET", "/get", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get("kv", c.Form("key"))
		if !ok {
			return c.Error(404, "missing")
		}
		return c.OK(o.Get("val"))
	})
	svc.Router.Handle("GET", "/sum", func(c *web.Ctx) wire.Response {
		out := ""
		for _, o := range c.DB.List("kv") {
			out += o.ID + "=" + o.Get("val") + ";"
		}
		return c.OK(out)
	})
}

// simWorld is one set of services: the attacked world runs on a simnet
// fault layer, the golden world directly on a clean bus.
type simWorld struct {
	bus   *transport.Bus
	net   core.Caller
	sim   *simnet.Net // nil in the golden world
	clock *simnet.Clock
	ccfg  core.Config
	apps  map[string]*simApp
	ctrls map[string]*core.Controller
	order []string

	// Sharding (SimConfig.Shards > 1; attacked world only). order keeps
	// the base service names; cnames lists every controller (shard) name
	// in deterministic order — equal to order when unsharded, so every
	// loop below that drives controllers iterates cnames. routers maps
	// each base name to its ShardedController, registered on the bus
	// under the base name so live traffic routes by key.
	shards  int
	topo    *core.ShardTopology
	cnames  []string
	routers map[string]*core.ShardedController

	// Observability (SimConfig.Obs; attacked world only). The registry is
	// shared by every controller incarnation, so spans recorded before a
	// crash and after its recovery land in one ring.
	obs *obs.Registry

	// Batch-incoming mode (SimConfig.BatchIncoming; attacked world only).
	batchEvery int
	pulses     int
	batchErr   error

	// Scheduled-pump mode (SimConfig.ScheduledPump; attacked world only).
	sched       *dsched.Sched
	rootCtx     context.Context
	rootCancel  context.CancelFunc
	pumpCancel  map[string]context.CancelFunc
	killCrashes bool

	// WAL mode (SimConfig.WAL; attacked world only).
	walBase      string
	walOwned     bool // we created walBase and must remove it
	walOpts      wal.Options
	walPowerLoss bool
	walDirs      map[string]string
	walWriters   map[string]*wal.Writer
	walCrashes   map[string]int
}

// enableWAL puts every service of the (already built) world on an on-disk
// write-ahead log: each controller gets a WAL directory and an attached
// writer via persist.Recover (a no-op recovery on the empty directory).
func (w *simWorld) enableWAL(cfg SimConfig) error {
	base := cfg.WALDir
	if base == "" {
		d, err := os.MkdirTemp("", "airesim-wal-")
		if err != nil {
			return fmt.Errorf("sim: wal dir: %w", err)
		}
		base = d
		w.walOwned = true
	}
	w.walBase = base
	pol := wal.FsyncEveryCommit
	if cfg.WALFsync != "" {
		p, err := wal.ParsePolicy(cfg.WALFsync)
		if err != nil {
			return err
		}
		pol = p
	}
	w.walOpts = wal.Options{Policy: pol, Interval: cfg.WALInterval}
	w.walPowerLoss = cfg.WALPowerLoss
	w.walDirs = map[string]string{}
	w.walWriters = map[string]*wal.Writer{}
	w.walCrashes = map[string]int{}
	for _, name := range w.cnames {
		dir := filepath.Join(base, name)
		w.walDirs[name] = dir
		wr, err := persist.Recover(w.ctrls[name], dir, w.walOpts)
		if err != nil {
			return fmt.Errorf("sim: wal init %s: %w", name, err)
		}
		w.walWriters[name] = wr
	}
	return nil
}

// closeWAL closes every writer and removes the temp directory (if owned).
func (w *simWorld) closeWAL() {
	for _, wr := range w.walWriters {
		wr.Close()
	}
	if w.walOwned && w.walBase != "" {
		os.RemoveAll(w.walBase)
	}
}

func buildSimWorld(cfg SimConfig, faulted bool) *simWorld {
	w := &simWorld{
		bus:     transport.NewBus(),
		clock:   simnet.NewClock(simClockStart),
		apps:    map[string]*simApp{},
		ctrls:   map[string]*core.Controller{},
		routers: map[string]*core.ShardedController{},
		shards:  1,
	}
	if faulted {
		// Any deterministic derivation works; keep the fault stream
		// distinct from the workload generator's.
		w.sim = simnet.New(w.bus, cfg.Seed*2+1, cfg.Faults)
		w.net = w.sim
	} else {
		w.net = w.bus
	}
	ccfg := core.DefaultConfig()
	ccfg.Backoff = core.Backoff{Base: simBackoffBase, Max: simBackoffMax, Factor: 2}
	ccfg.Clock = w.clock.Now
	ccfg.DisableDedupInbox = cfg.DisableDedup
	ccfg.VersionVectors = cfg.VersionVectors
	ccfg.InboxCap = cfg.InboxCap
	ccfg.Engine.LinearScan = cfg.LinearScan
	if faulted && cfg.Obs {
		w.obs = obs.New(obs.DefaultRingCap)
		ccfg.Obs = w.obs
	}
	if faulted && cfg.BatchIncoming {
		ccfg.BatchIncoming = true
		w.batchEvery = cfg.BatchEvery
		if w.batchEvery <= 0 {
			w.batchEvery = 2
		}
	}
	if faulted && cfg.Shards > 1 {
		w.shards = cfg.Shards
		w.topo = core.NewShardTopology()
		for i := 0; i < cfg.Services; i++ {
			w.topo.SetShards(fmt.Sprintf("s%d", i), cfg.Shards)
		}
		ccfg.Topology = w.topo
	}
	if faulted {
		// Every attacked run verifies vdb/repairlog index coherence at
		// repair-wave start (pure reads under the lock — digest-neutral).
		ccfg.StrictIndexes = true
	}
	if faulted && cfg.ScheduledPump {
		// A third seed stream drives the task schedule; the pump paces on
		// the virtual clock, one pulse step per interval.
		w.sched = dsched.New(cfg.Seed*3+2, w.clock)
		ccfg.Sched = w.sched
		ccfg.PumpInterval = simPulseStep
		ccfg.FaultUngatedReconcile = cfg.faultUngatedReconcile
		w.rootCtx, w.rootCancel = context.WithCancel(context.Background())
		w.pumpCancel = map[string]context.CancelFunc{}
		w.killCrashes = cfg.killCrashes
	}
	w.ccfg = ccfg

	for i := 0; i < cfg.Services; i++ {
		w.order = append(w.order, fmt.Sprintf("s%d", i))
	}
	for i, name := range w.order {
		var peers []string
		if cfg.Topology == "fanout" {
			if i == 0 {
				peers = append(peers, w.order[1:]...)
			}
		} else if i+1 < len(w.order) { // chain
			peers = []string{w.order[i+1]}
		}
		// Peers are base names: a forwarded write reaches the peer's
		// router, which routes it by key; the repair carriers it later
		// spawns resolve the owning shard themselves (peerDest).
		for s := 0; s < w.shards; s++ {
			cname := w.shardName(name, s)
			w.apps[cname] = &simApp{name: cname, peers: peers}
			w.cnames = append(w.cnames, cname)
			w.addController(cname)
		}
		if w.shards > 1 {
			shardCtrls := make([]*core.Controller, w.shards)
			for s := 0; s < w.shards; s++ {
				shardCtrls[s] = w.ctrls[w.shardName(name, s)]
			}
			r := core.NewShardedController(name, w.topo, shardCtrls)
			w.bus.Register(name, r)
			w.routers[name] = r
		}
	}
	return w
}

// shardName is the controller name of base's i-th shard ("s0#1"; the base
// name itself when the world is unsharded).
func (w *simWorld) shardName(base string, i int) string {
	if w.topo == nil {
		return base
	}
	return w.topo.ShardName(base, i)
}

// shardNames lists base's controller names in shard order.
func (w *simWorld) shardNames(base string) []string {
	if w.shards <= 1 {
		return []string{base}
	}
	names := make([]string, w.shards)
	for i := range names {
		names[i] = w.topo.ShardName(base, i)
	}
	return names
}

// applyLocal issues repair actions at the named service's front door: the
// router when sharded (each action dispatched to the shard that owns the
// request ID or anchor it names), the controller itself when not.
func (w *simWorld) applyLocal(base string, a warp.Action) (*warp.Result, error) {
	if r := w.routers[base]; r != nil {
		return r.ApplyLocal(a)
	}
	return w.ctrls[base].ApplyLocal(a)
}

// addController stands up (or replaces, after a crash) the controller for
// the named service.
func (w *simWorld) addController(name string) *core.Controller {
	c := core.NewController(w.apps[name], w.net, w.ccfg)
	c.Svc.TimeSource = func() int64 { return simFrozenTime }
	w.bus.Register(name, c)
	w.ctrls[name] = c
	return c
}

// startPump starts the named controller's background pump as a scheduled
// task (ScheduledPump mode only).
func (w *simWorld) startPump(name string) error {
	ctx, cancel := context.WithCancel(w.rootCtx)
	if err := w.ctrls[name].StartPump(ctx); err != nil {
		cancel()
		return fmt.Errorf("sim: start pump on %s: %w", name, err)
	}
	w.pumpCancel[name] = cancel
	return nil
}

// stopPump cancels the named controller's pump and waits its tasks out —
// by yielding when called from inside a scheduled task (the workload's
// crash events), by stepping the scheduler when called from the driver.
func (w *simWorld) stopPump(name string) {
	cancel := w.pumpCancel[name]
	if cancel == nil {
		return
	}
	delete(w.pumpCancel, name)
	cancel()
	for w.ctrls[name].PumpRunning() {
		if w.sched.InTask() {
			w.sched.Yield()
		} else if w.sched.RunUntilIdle() == 0 {
			// A cancelled pump is always runnable; no progress means a
			// scheduler bug — fail loudly with the seed-reproducible state.
			panic(fmt.Sprintf("sim: pump on %s will not stop (scheduler idle)", name))
		}
	}
}

// killService crash-kills the named service's scheduler tasks: its pump
// loop and every delivery worker are killed at whatever yield point they
// are parked — including inside the claim window, deliveries sent but not
// reconciled — and never resume, so no deferred cleanup runs (dsched.Kill
// models a crash, not an unwind). The caller must discard the controller
// and rebuild from durable state: the killed incarnation's in-memory queue
// still carries inflight claim flags no worker will ever release.
func (w *simWorld) killService(name string) {
	pump := "pump:" + name
	workers := "worker:" + name + "->"
	for _, ti := range w.sched.Parked() {
		if ti.Name == pump || strings.HasPrefix(ti.Name, workers) {
			w.sched.Kill(ti.ID)
		}
	}
	if cancel := w.pumpCancel[name]; cancel != nil {
		delete(w.pumpCancel, name)
		cancel()
	}
}

// crashRestart simulates a crash. Without WAL mode the controller is
// discarded and rebuilt from a persist snapshot of its live state (the
// legacy handoff, which by construction cannot lose anything). In WAL mode
// the live state is genuinely thrown away: the crash is a power failure
// (the WAL's unsynced tail is truncated) or a process kill (buffered
// appends survive), and the fresh controller is rebuilt purely from disk —
// latest checkpoint plus WAL replay. Under ScheduledPump the pump is torn
// down first and restarted on the rebuilt controller, so the crash point
// sits between delivery passes.
// crashRestart takes a base service name: a crash fells the whole host,
// so under sharding every shard of the service goes down and comes back
// together. Teardown and bookkeeping are serial (they touch the bus, the
// scheduler, and the world's maps); only the disk recovery itself runs in
// parallel across shards (persist.RecoverShards — pure replay, no
// scheduler involvement), which is exactly the startup-parallelism claim
// the shard layer makes.
func (w *simWorld) crashRestart(base string) error {
	names := w.shardNames(base)
	if w.sched != nil {
		for _, name := range names {
			if w.killCrashes {
				w.killService(name)
			} else {
				w.stopPump(name)
			}
		}
	}
	if w.walWriters != nil {
		fresh := make([]*core.Controller, len(names))
		dirs := make([]string, len(names))
		for i, name := range names {
			if err := w.ctrls[name].WALError(); err != nil {
				return fmt.Errorf("sim: %s had a wal append error before its crash: %w", name, err)
			}
			old := w.ctrls[name].DetachWAL()
			if w.walPowerLoss {
				if _, err := old.CrashLose(); err != nil {
					return fmt.Errorf("sim: power-loss crash %s: %w", name, err)
				}
			} else if err := old.Close(); err != nil {
				return fmt.Errorf("sim: crash %s: %w", name, err)
			}
			fresh[i] = w.addController(name)
			dirs[i] = w.walDirs[name]
		}
		var writers []*wal.Writer
		if len(names) > 1 {
			ws, err := persist.RecoverShards(fresh, dirs, w.walOpts)
			if err != nil {
				return fmt.Errorf("sim: wal recovery %s: %w", base, err)
			}
			writers = ws
		} else {
			wr, err := persist.Recover(fresh[0], dirs[0], w.walOpts)
			if err != nil {
				return fmt.Errorf("sim: wal recovery %s: %w", names[0], err)
			}
			writers = []*wal.Writer{wr}
		}
		for i, name := range names {
			w.walWriters[name] = writers[i]
			w.walCrashes[name]++
			// Every other crash of a service, the recovered incarnation
			// compacts: checkpoint, truncate replayed segments, delete the
			// superseded checkpoint — so its NEXT crash recovers from
			// snapshot + tail rather than pure replay.
			if w.walCrashes[name]%2 == 0 {
				if _, err := persist.CheckpointAndTruncate(fresh[i], writers[i], w.walDirs[name]); err != nil {
					return fmt.Errorf("sim: checkpoint %s: %w", name, err)
				}
			}
		}
	} else {
		for _, name := range names {
			snap := persist.Capture(w.ctrls[name])
			fresh := w.addController(name)
			if err := persist.Apply(fresh, snap); err != nil {
				return fmt.Errorf("sim: restore %s: %w", name, err)
			}
		}
	}
	if r := w.routers[base]; r != nil {
		for i, name := range names {
			r.SetShard(i, w.ctrls[name])
		}
	}
	if w.sched != nil {
		for _, name := range names {
			if err := w.startPump(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// execOp performs one workload step through the head service, returning
// the assigned request ID for puts.
func (w *simWorld) execOp(op simOp) (string, error) {
	head := w.order[0]
	switch op.kind {
	case 0:
		resp, err := w.net.Call("", head, wire.NewRequest("POST", "/put").
			WithForm("key", op.key, "val", op.val))
		if err != nil {
			return "", fmt.Errorf("sim: put on %s: %w", head, err)
		}
		return resp.Header[wire.HdrRequestID], nil
	case 1:
		_, err := w.net.Call("", head, wire.NewRequest("GET", "/get").WithForm("key", op.key))
		return "", err
	case 3:
		// Only the golden world executes /add as live traffic: it is the
		// reference position of a created request.
		_, err := w.net.Call("", head, wire.NewRequest("POST", "/add").
			WithForm("key", op.key, "delta", op.val))
		return "", err
	default:
		_, err := w.net.Call("", head, wire.NewRequest("GET", "/sum"))
		return "", err
	}
}

// pulse runs one delivery round: one Flush per service in deterministic
// order, then one simnet Tick (delayed deliveries). Returns how much
// happened.
func (w *simWorld) pulse() int {
	progress := 0
	for _, name := range w.cnames {
		d, _ := w.ctrls[name].Flush()
		progress += d
	}
	if w.batchEvery > 0 {
		w.pulses++
		if w.pulses%w.batchEvery == 0 {
			w.sweepBatches()
		}
	}
	if w.sim != nil {
		progress += w.sim.Tick()
	}
	return progress
}

// sweepBatches runs ProcessIncoming on every service holding accepted
// incoming repair actions (BatchIncoming mode). The first failure is
// remembered and surfaced as an oracle failure — a batch that cannot
// apply is lost repair even if the in-memory state happens to converge.
func (w *simWorld) sweepBatches() {
	for _, name := range w.cnames {
		if w.ctrls[name].InboxLen() == 0 {
			continue
		}
		if _, err := w.ctrls[name].ProcessIncoming(); err != nil && w.batchErr == nil {
			w.batchErr = fmt.Errorf("%s: %w", name, err)
		}
	}
}

// inboxPending counts accepted-but-unapplied incoming repair actions
// across all services.
func (w *simWorld) inboxPending() int {
	n := 0
	for _, name := range w.cnames {
		n += w.ctrls[name].InboxLen()
	}
	return n
}

func (w *simWorld) queued() int {
	n := 0
	for _, name := range w.cnames {
		n += w.ctrls[name].QueueLen()
	}
	return n
}

func (w *simWorld) heldMessages() []string {
	var held []string
	for _, name := range w.cnames {
		for _, p := range w.ctrls[name].Pending() {
			if p.Held {
				held = append(held, fmt.Sprintf("%s: %s (%s to %s): %s", name, p.MsgID, p.Msg.Kind, p.Msg.Target, p.LastErr))
			}
		}
	}
	return held
}

// mergedKVState is the union of base's shard states — the whole service's
// kv contents as a client sees them through the router. A key stored on
// two shards is a shard-map violation and fails loudly.
func (w *simWorld) mergedKVState(base string) (map[string]string, error) {
	if w.shards <= 1 {
		return kvState(w.ctrls[base]), nil
	}
	out := map[string]string{}
	for _, name := range w.shardNames(base) {
		for k, v := range kvState(w.ctrls[name]) {
			if prev, dup := out[k]; dup {
				return nil, fmt.Errorf("%s: key %s present on two shards (%q and %q)", base, k, prev, v)
			}
			out[k] = v
		}
	}
	return out, nil
}

// kvState flattens one service's live kv contents.
func kvState(c *core.Controller) map[string]string {
	out := map[string]string{}
	for _, id := range c.Svc.Store.IDs("kv") {
		if v, ok := c.Svc.Store.Get(vdb.Key{Model: "kv", ID: id}); ok {
			out[id] = v.Fields["val"]
		}
	}
	return out
}

func stateLines(name string, st map[string]string) []string {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		lines = append(lines, fmt.Sprintf("%s|%s=%s", name, k, st[k]))
	}
	return lines
}

// buildSchedule generates the deterministic workload + fault schedule for
// a seed.
func buildSchedule(cfg SimConfig) ([]simEvent, []simOp, []simCreate) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	ops := make([]simOp, cfg.Ops)
	var putIdx []int
	for i := range ops {
		key := fmt.Sprintf("k%d", rng.Intn(5))
		switch r := rng.Float64(); {
		case r < 0.6:
			ops[i] = simOp{kind: 0, key: key, val: fmt.Sprintf("v%d", rng.Intn(10000))}
			putIdx = append(putIdx, i)
		case r < 0.8:
			ops[i] = simOp{kind: 1, key: key}
		default:
			ops[i] = simOp{kind: 2}
		}
	}

	// Attack repairs: distinct puts, each repaired once, at a step at or
	// after the put executes.
	repairAt := map[int][]simRepair{}
	repaired := map[int]bool{}
	type firstRepair struct {
		target, step int
		cancel       bool
	}
	var first []firstRepair
	nRepairs := cfg.Repairs
	if nRepairs > len(putIdx) {
		nRepairs = len(putIdx)
	}
	for _, pi := range rng.Perm(len(putIdx))[:nRepairs] {
		target := putIdx[pi]
		step := target + rng.Intn(cfg.Ops-target)
		rep := simRepair{opIdx: target, cancel: rng.Intn(2) == 0}
		if !rep.cancel {
			rep.newVal = fmt.Sprintf("r%d", rng.Intn(10000))
		}
		repairAt[step] = append(repairAt[step], rep)
		repaired[target] = true
		first = append(first, firstRepair{target: target, step: step, cancel: rep.cancel})
	}

	// Repair-of-repair: a second, later replacement of an already-replaced
	// put. The second repair supersedes the first in the sender's queue
	// (same collapse key), so a delayed copy of the first repair's content
	// can arrive after the second was applied — the stale-redelivery
	// hazard. The golden world uses whichever replacement the schedule
	// issues last.
	if cfg.Rerepairs > 0 {
		var cands []firstRepair
		for _, fr := range first {
			if !fr.cancel {
				cands = append(cands, fr)
			}
		}
		n := cfg.Rerepairs
		if n > len(cands) {
			n = len(cands)
		}
		for _, ci := range rng.Perm(len(cands))[:n] {
			fr := cands[ci]
			// The second repair lands within a few steps of the first, so a
			// delayed copy of the first repair's content is plausibly still
			// in the network when the superseding content is applied.
			gap := cfg.Ops - fr.step
			if gap > 5 {
				gap = 5
			}
			step := fr.step + rng.Intn(gap)
			rep := simRepair{opIdx: fr.target, newVal: fmt.Sprintf("rr%d", rng.Intn(10000))}
			repairAt[step] = append(repairAt[step], rep)
		}
	}

	// Creates: new /add requests inserted into the head's past, each on a
	// key of its own (disjoint from the put key space, so final state is
	// insertion-position-independent — /add's non-idempotence is what
	// exposes a double-applied create). Anchors are unrepaired puts so the
	// before_id anchor survives cancels.
	var creates []simCreate
	createAt := map[int][]int{}
	if cfg.Creates > 0 {
		var anchors []int
		for _, pi := range putIdx {
			if !repaired[pi] {
				anchors = append(anchors, pi)
			}
		}
		n := cfg.Creates
		if n > len(anchors) {
			n = len(anchors)
		}
		for i, ai := range rng.Perm(len(anchors))[:n] {
			anchor := anchors[ai]
			step := anchor + rng.Intn(cfg.Ops-anchor)
			creates = append(creates, simCreate{
				anchor: anchor,
				step:   step,
				key:    fmt.Sprintf("c%d", i),
				delta:  strconv.Itoa(1 + rng.Intn(9)),
			})
			createAt[step] = append(createAt[step], len(creates)-1)
		}
	}

	var events []simEvent
	healAt := -1
	for i := 0; i < cfg.Ops; i++ {
		if healAt == i {
			events = append(events, simEvent{kind: evHeal})
			healAt = -1
		}
		events = append(events, simEvent{kind: evExec, op: i})
		for _, rep := range repairAt[i] {
			events = append(events, simEvent{kind: evRepair, repair: rep})
		}
		for _, ci := range createAt[i] {
			events = append(events, simEvent{kind: evCreate, create: ci})
		}
		if cfg.CrashRate > 0 && rng.Float64() < cfg.CrashRate {
			events = append(events, simEvent{kind: evCrash, crash: fmt.Sprintf("s%d", rng.Intn(cfg.Services))})
		}
		if cfg.PartitionRate > 0 && healAt < 0 && rng.Float64() < cfg.PartitionRate {
			// Random bipartition with both sides non-empty.
			groups := [][]string{nil, nil}
			for s := 0; s < cfg.Services; s++ {
				g := rng.Intn(2)
				if s == 0 {
					g = 0
				} else if s == cfg.Services-1 {
					g = 1
				}
				groups[g] = append(groups[g], fmt.Sprintf("s%d", s))
			}
			events = append(events, simEvent{kind: evPartition, groups: groups})
			healAt = i + simPartitionMin + rng.Intn(simPartitionVar)
		}
	}
	return events, ops, creates
}

// applyEvent executes one schedule event against the attacked world,
// recording request IDs and repair decisions for the golden re-execution.
func (w *simWorld) applyEvent(ev simEvent, ops []simOp, creates []simCreate, res *SimResult, ids map[int]string, cancelled map[int]bool, replaced map[int]string) error {
	switch ev.kind {
	case evExec:
		id, err := w.execOp(ops[ev.op])
		if err != nil {
			return err
		}
		if id != "" {
			ids[ev.op] = id
		}
	case evRepair:
		rep := ev.repair
		id := ids[rep.opIdx]
		if id == "" {
			return fmt.Errorf("sim: repair target op %d has no request ID", rep.opIdx)
		}
		if rep.cancel {
			if _, err := w.applyLocal(w.order[0], warp.Action{Kind: warp.CancelReq, ReqID: id}); err != nil {
				return fmt.Errorf("sim: cancel %s: %w", id, err)
			}
			cancelled[rep.opIdx] = true
		} else {
			newReq := wire.NewRequest("POST", "/put").
				WithForm("key", ops[rep.opIdx].key, "val", rep.newVal)
			if _, err := w.applyLocal(w.order[0], warp.Action{Kind: warp.ReplaceReq, ReqID: id, NewReq: newReq}); err != nil {
				return fmt.Errorf("sim: replace %s: %w", id, err)
			}
			replaced[rep.opIdx] = rep.newVal
		}
		res.RepairCount++
	case evCreate:
		cr := creates[ev.create]
		anchorID := ids[cr.anchor]
		if anchorID == "" {
			return fmt.Errorf("sim: create anchor op %d has no request ID", cr.anchor)
		}
		newReq := wire.NewRequest("POST", "/add").WithForm("key", cr.key, "delta", cr.delta)
		// before_id anchors the created request after an existing put;
		// with no after bound it lands at the end of the head's current
		// timeline, which is exactly where the golden world runs it. Under
		// sharding the anchor's ID names its owning shard, so the create
		// lands on — and cascades from — the shard that executed the put.
		if _, err := w.applyLocal(w.order[0], warp.Action{Kind: warp.CreateReq, NewReq: newReq, BeforeID: anchorID}); err != nil {
			return fmt.Errorf("sim: create %s: %w", cr.key, err)
		}
		res.CreateCount++
	case evCrash:
		if err := w.crashRestart(ev.crash); err != nil {
			return err
		}
		res.CrashCount++
	case evPartition:
		w.sim.Partition(ev.groups...)
		res.PartitionCount++
	case evHeal:
		w.sim.Heal()
	}
	return nil
}

// progressTally sums the quiesce progress signal across all services. The
// widened (default) form counts receive-side work — exactly-once inbox
// commits and ProcessIncoming batch applies — alongside terminal delivery
// outcomes, because batch-incoming repair makes progress no delivery
// outcome reflects (the historical delivery-only signal quiesced with
// accepted batches still unapplied). A backoff retry that fails again
// still moves nothing and still does not count. narrow restores the old
// delivery-only signal for the quiesce-widening regression test.
func (w *simWorld) progressTally(narrow bool) int64 {
	var n int64
	for _, name := range w.cnames {
		st := w.ctrls[name].Stats()
		n += st.MsgsDelivered + st.MsgsFailed
		if !narrow {
			n += st.InboxCommits + st.BatchApplies
		}
	}
	return n
}

// runScheduled executes the event schedule with repair delivery on the
// background pumps, every pump and worker a task of the deterministic
// scheduler, and the workload itself the task injecting events — so the
// seeded schedule interleaves workload steps (including supersedes and
// crash-restarts) *into* claim/deliver/reconcile windows, not just between
// delivery passes. Quiesce alternates scheduler drains with virtual-clock
// advances, then shuts every pump down; the run leaks no task.
func (w *simWorld) runScheduled(cfg SimConfig, events []simEvent, ops []simOp, creates []simCreate, res *SimResult, ids map[int]string, cancelled map[int]bool, replaced map[int]string) error {
	for _, name := range w.cnames {
		if err := w.startPump(name); err != nil {
			return err
		}
	}
	var runErr error
	done := false
	w.sched.Go("workload", func() {
		defer func() { done = true }()
		for _, ev := range events {
			if err := w.applyEvent(ev, ops, creates, res, ids, cancelled, replaced); err != nil {
				runErr = err
				return
			}
			w.sched.Yield() // pumps and workers interleave with the workload
			w.sim.Tick()    // delayed repair-plane deliveries land
			w.clock.Advance(simPulseStep)
			w.sched.Yield()
		}
	})
	w.sched.RunUntilIdle()
	if !done {
		panic(fmt.Sprintf("sim: seed %d: workload task parked with the scheduler idle", cfg.Seed))
	}
	if runErr != nil {
		w.rootCancel()
		w.sched.RunUntilIdle()
		return runErr
	}

	// Quiesce: heal the fabric, then drain the scheduler and elapse
	// virtual time until deliveries stop moving and nothing is queued or
	// held in the network.
	w.sim.Heal()
	last := w.progressTally(cfg.narrowQuiesce)
	quiesced := false
	for ; res.Rounds < cfg.MaxRounds; res.Rounds++ {
		w.sched.RunUntilIdle()
		ticked := w.sim.Tick()
		w.sched.RunUntilIdle()
		if w.batchEvery > 0 {
			w.sweepBatches()
			w.sched.RunUntilIdle()
		}
		cur := w.progressTally(cfg.narrowQuiesce)
		progress := int(cur-last) + ticked
		last = cur
		w.clock.Advance(simPulseStep)
		if progress == 0 {
			if w.queued() == 0 && w.sim.HeldCount() == 0 && (cfg.narrowQuiesce || w.inboxPending() == 0) {
				quiesced = true
				break
			}
			w.clock.Advance(simBackoffMax)
		}
	}
	if !quiesced {
		res.Failures = append(res.Failures,
			fmt.Sprintf("did not quiesce after %d rounds: %d queued, %d held in network", res.Rounds, w.queued(), w.sim.HeldCount()))
	}

	// Tear the pumps down. Every task must exit: a stuck worker here is a
	// shutdown bug, reproducible from the seed.
	w.rootCancel()
	w.sched.RunUntilIdle()
	if live := w.sched.Live(); live != 0 {
		res.Failures = append(res.Failures,
			fmt.Sprintf("scheduler: %d tasks still live after pump shutdown", live))
	}
	res.SchedSteps = w.sched.Steps()
	res.SchedTrace = w.sched.Trace()
	return nil
}

// RunSim executes one simulation run: the attacked world under faults,
// then the golden reference, then the convergence oracle. The returned
// error reports harness-level breakage (a repair call that could not even
// be issued); oracle violations land in SimResult.Failures.
func RunSim(cfg SimConfig) (*SimResult, error) {
	cfg = cfg.withDefaults()
	events, ops, creates := buildSchedule(cfg)

	res := &SimResult{Seed: cfg.Seed, Ops: cfg.Ops}
	w := buildSimWorld(cfg, true)
	if cfg.WAL {
		if err := w.enableWAL(cfg); err != nil {
			return nil, err
		}
		defer w.closeWAL()
	}
	ids := map[int]string{}
	cancelled := map[int]bool{}
	replaced := map[int]string{}

	if cfg.ScheduledPump {
		if err := w.runScheduled(cfg, events, ops, creates, res, ids, cancelled, replaced); err != nil {
			return nil, err
		}
	} else {
		for _, ev := range events {
			if err := w.applyEvent(ev, ops, creates, res, ids, cancelled, replaced); err != nil {
				return nil, err
			}
			w.pulse()
			w.clock.Advance(simPulseStep)
		}

		// Quiesce: heal the fabric and pump until nothing moves and nothing
		// is queued or held in flight. Backoff windows are elapsed by
		// advancing the simulated clock, never by waiting.
		w.sim.Heal()
		last := w.progressTally(cfg.narrowQuiesce)
		quiesced := false
		for ; res.Rounds < cfg.MaxRounds; res.Rounds++ {
			moved := w.pulse()
			cur := w.progressTally(cfg.narrowQuiesce)
			progress := moved + int(cur-last)
			last = cur
			w.clock.Advance(simPulseStep)
			if progress == 0 {
				if w.queued() == 0 && w.sim.HeldCount() == 0 && (cfg.narrowQuiesce || w.inboxPending() == 0) {
					quiesced = true
					break
				}
				w.clock.Advance(simBackoffMax)
			}
		}
		if !quiesced {
			res.Failures = append(res.Failures,
				fmt.Sprintf("did not quiesce after %d rounds: %d queued, %d held in network", res.Rounds, w.queued(), w.sim.HeldCount()))
		}
	}
	for _, h := range w.heldMessages() {
		res.Failures = append(res.Failures, "message parked (Held): "+h)
	}
	// A WAL append failure is a silent-durability-loss hazard: surface it as
	// an oracle failure even if the in-memory state happens to converge.
	for _, name := range w.cnames {
		if err := w.ctrls[name].WALError(); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: wal append error: %v", name, err))
		}
	}
	if w.batchErr != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("batch apply error: %v", w.batchErr))
	}
	for _, name := range w.cnames {
		if hw := w.ctrls[name].InboxHighWater(); hw > res.InboxHighWater {
			res.InboxHighWater = hw
		}
	}
	if w.obs != nil {
		res.WaveStats = obs.Waves(w.obs.Ring().Spans())
		snap := w.obs.Snapshot()
		res.ObsMetrics = &snap
	}
	if cfg.inspect != nil {
		cfg.inspect(w)
	}

	// Golden reference: same workload on a clean fabric, attacks removed
	// (cancels) or corrected at their original position (replaces), and
	// created /add requests executed exactly once, as live traffic, at the
	// step the create was issued (the end of the head's timeline then —
	// where the attacked world's create anchors).
	createAt := map[int][]simCreate{}
	for _, cr := range creates {
		createAt[cr.step] = append(createAt[cr.step], cr)
	}
	g := buildSimWorld(cfg, false)
	for i, op := range ops {
		if v, ok := replaced[i]; ok {
			op.val = v
		}
		if !cancelled[i] {
			if _, err := g.execOp(op); err != nil {
				return nil, fmt.Errorf("sim: golden world: %w", err)
			}
		}
		for _, cr := range createAt[i] {
			if _, err := g.execOp(simOp{kind: 3, key: cr.key, val: cr.delta}); err != nil {
				return nil, fmt.Errorf("sim: golden world create: %w", err)
			}
		}
	}

	// The oracle: every service converged to the golden state. Under
	// sharding "the service's state" is the union of its shards' states —
	// a key present on two shards is itself an oracle failure (the shard
	// map was not respected), surfaced before the value comparison.
	digest := fnv.New64a()
	oracle := fnv.New64a()
	for _, name := range w.order {
		got, mergeErr := w.mergedKVState(name)
		if mergeErr != nil {
			res.Failures = append(res.Failures, mergeErr.Error())
			continue
		}
		want := kvState(g.ctrls[name])
		for _, line := range stateLines(name, got) {
			fmt.Fprintln(digest, line)
			fmt.Fprintln(oracle, line)
		}
		if len(got) != len(want) {
			res.Failures = append(res.Failures, fmt.Sprintf("%s diverged: got %v, want %v", name, got, want))
			continue
		}
		for k, v := range want {
			if got[k] != v {
				res.Failures = append(res.Failures, fmt.Sprintf("%s diverged at %s: got %q, want %q (full: got %v, want %v)", name, k, got[k], v, got, want))
				break
			}
		}
	}
	res.OracleDigest = oracle.Sum64()

	res.FaultCounts = w.sim.Counts()
	res.Trace = w.sim.Trace()
	for _, line := range res.Trace {
		fmt.Fprintln(digest, line)
	}
	// Under ScheduledPump the task schedule is part of the run's identity:
	// two runs of one seed must agree on every scheduling decision, not
	// just the converged state.
	fmt.Fprintln(digest, "sched-steps", res.SchedSteps)
	for _, line := range res.SchedTrace {
		fmt.Fprintln(digest, line)
	}
	res.StateDigest = digest.Sum64()
	res.Passed = len(res.Failures) == 0
	return res, nil
}

// simProfiles are the named fault classes the CI matrix sweeps. "mixed"
// composes everything; the others isolate one class so a regression names
// its fault.
var simProfiles = map[string]SimConfig{
	"drop":      {Services: 3, Topology: "chain", Faults: simnet.FaultPlan{Drop: 0.3}},
	"duplicate": {Services: 3, Topology: "chain", Faults: simnet.FaultPlan{Duplicate: 0.3, DropResponse: 0.2}},
	"delay":     {Services: 3, Topology: "chain", Faults: simnet.FaultPlan{Delay: 0.35}},
	"partition": {Services: 4, Topology: "fanout", PartitionRate: 0.2},
	// crash: power-loss crash-restarts against the on-disk WAL with
	// fsync-every-commit — the durability gate. Recovery is checkpoint +
	// WAL replay of genuinely persisted bytes (the in-memory state is
	// discarded, and CrashLose drops anything unsynced); with fsync=every
	// nothing is unsynced, so zero committed state may be lost. Run with
	// -fsync none to watch the tail genuinely disappear.
	"crash": {Services: 3, Topology: "chain", CrashRate: 0.12,
		WAL: true, WALFsync: "every", WALPowerLoss: true},
	// fsynclag: deferred fsync (every 4th commit) under process crashes —
	// the fsync-lag fault class. A process kill keeps buffered appends (the
	// page cache outlives the process), so recovery still loses nothing;
	// only power loss (the crash profile) interacts with the sync schedule.
	"fsynclag": {Services: 3, Topology: "chain", CrashRate: 0.15,
		WAL: true, WALFsync: "interval", WALInterval: 4,
		Faults: simnet.FaultPlan{Drop: 0.1, DropResponse: 0.1}},
	"mixed": {Services: 4, Topology: "fanout", PartitionRate: 0.08, CrashRate: 0.05,
		Faults: simnet.FaultPlan{Drop: 0.15, DropResponse: 0.1, Duplicate: 0.1, Delay: 0.15}},
	// stale: repair-of-repair workloads under multi-tick delay faults put
	// a delayed copy of superseded repair content on the wire after the
	// sender's retries delivered the newer content. Wire generations
	// (Aire-Generation) plus the dedup inbox discard the old copy; without
	// them the peer regresses (run with -nodedup / SimConfig.DisableDedup
	// to watch it fail).
	"stale": {Services: 3, Topology: "chain", Repairs: 5, Rerepairs: 4,
		Faults: simnet.FaultPlan{Delay: 0.35, DelayTicks: 10, Duplicate: 0.1, DropResponse: 0.1}},
	// dupcreate: create-bearing workloads under lost-response/duplicate
	// faults re-deliver creates whose first response vanished. The dedup
	// inbox re-acknowledges them with the originally minted request ID;
	// without it the peer mints a second synthetic request and the
	// non-idempotent /add double-applies.
	"dupcreate": {Services: 3, Topology: "chain", Creates: 3,
		Faults: simnet.FaultPlan{DropResponse: 0.25, Duplicate: 0.15, Drop: 0.1}},
	// lostwave: a cursed delivery and ALL of its retries vanish silently
	// for the rest of the run (LostTicks 0) — backoff-driven redelivery is
	// structurally useless, because every attempt re-enters the same hole.
	// Only a carrier stamped Aire-Reoffer lifts the curse, and only the
	// version-vector layer ever stamps it (a receiver gap NACK, or the
	// sender's own backoff-horizon escalation), so the profile runs with
	// VersionVectors on. Run with -novectors to watch convergence
	// genuinely stall past the backoff horizon.
	"lostwave": {Services: 3, Topology: "chain", Repairs: 5, Rerepairs: 3, Creates: 2,
		VersionVectors: true,
		Faults:         simnet.FaultPlan{Lost: 0.1, DropResponse: 0.1}},
	// corrupt: repair-plane bodies arrive with a byte flipped in flight.
	// The always-on carrier checksum (Aire-Body-Sum) refuses the delivery
	// loudly (503) instead of applying garbage; the sender backs off and
	// the clean retry converges.
	"corrupt": {Services: 3, Topology: "chain", Repairs: 4, Creates: 2,
		Faults: simnet.FaultPlan{Corrupt: 0.25, Drop: 0.1}},
}

// SimProfileNames lists the named fault profiles in a fixed order.
func SimProfileNames() []string {
	return []string{"drop", "duplicate", "delay", "partition", "crash", "fsynclag", "mixed", "stale", "dupcreate", "lostwave", "corrupt"}
}

// SimProfileConfig returns the SimConfig for a named fault profile; the
// caller sets Seed (and may override any knob).
func SimProfileConfig(name string) (SimConfig, error) {
	cfg, ok := simProfiles[name]
	if !ok {
		return SimConfig{}, fmt.Errorf("sim: unknown profile %q (have %v)", name, SimProfileNames())
	}
	return cfg, nil
}
