package warp

import (
	"fmt"
	"strings"
	"testing"

	"aire/internal/orm"
	"aire/internal/repairlog"
	"aire/internal/vdb"
	"aire/internal/web"
	"aire/internal/wire"
)

// rig is a minimal single-service runtime for driving the engine directly
// (without the controller): it executes requests in Normal mode with a
// scripted outbound, and exposes the engine.
type rig struct {
	svc    *web.Service
	engine *Engine
	// remote scripts responses for outgoing calls by target+path.
	remote func(target string, req wire.Request) wire.Response
	nCalls int
}

func newRig(t *testing.T, register func(svc *web.Service)) *rig {
	t.Helper()
	svc := web.NewService("rig")
	svc.TimeSource = func() int64 { return 42 }
	register(svc)
	r := &rig{svc: svc, engine: &Engine{Svc: svc, Cfg: DefaultConfig()}}
	return r
}

// handle runs one request through the service as the controller would.
func (r *rig) handle(t *testing.T, req wire.Request, aireClient bool) *repairlog.Record {
	t.Helper()
	rec := &repairlog.Record{
		ID:  r.svc.IDs.Request(),
		TS:  r.svc.Clock.Next(),
		Req: req,
	}
	if aireClient {
		rec.ClientRespID = fmt.Sprintf("client-resp-%s", rec.ID)
		rec.NotifierURL = "aire://client/aire/notify"
	}
	exec := &web.Exec{Svc: r.svc, Rec: rec, Mode: web.Normal, Outbound: func(seq int, target string, req wire.Request) (wire.Response, repairlog.Call) {
		r.nCalls++
		respID := r.svc.IDs.Response()
		resp := wire.NewResponse(200, "remote-ok")
		if r.remote != nil {
			resp = r.remote(target, req)
		}
		return resp, repairlog.Call{
			Target: target, RespID: respID,
			RemoteReqID: fmt.Sprintf("%s-req-%d", target, r.nCalls),
			Req:         req.Clone(), Resp: resp,
		}
	}}
	resp := exec.Run()
	rec.Resp = resp
	if err := r.svc.Log.Append(rec); err != nil {
		t.Fatal(err)
	}
	return rec
}

// kvRoutes registers put/get/sum plus a /push route that forwards to a peer.
func kvRoutes(svc *web.Service) {
	svc.Schema.Register("kv")
	svc.Router.Handle("POST", "/put", func(c *web.Ctx) wire.Response {
		if err := c.DB.Put("kv", c.Form("key"), orm.Fields("v", c.Form("val"))); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("ok")
	})
	svc.Router.Handle("GET", "/get", func(c *web.Ctx) wire.Response {
		o, ok := c.DB.Get("kv", c.Form("key"))
		if !ok {
			return c.Error(404, "missing")
		}
		return c.OK(o.Get("v"))
	})
	svc.Router.Handle("POST", "/push", func(c *web.Ctx) wire.Response {
		// Forward the value of key to the peer named in form "to", unless
		// the value starts with "local:".
		o, ok := c.DB.Get("kv", c.Form("key"))
		if !ok {
			return c.Error(404, "missing")
		}
		if !strings.HasPrefix(o.Get("v"), "local:") {
			c.Call(c.Form("to"), wire.NewRequest("POST", "/sink").WithForm("v", o.Get("v")))
		}
		return c.OK("pushed")
	})
}

func put(key, val string) wire.Request {
	return wire.NewRequest("POST", "/put").WithForm("key", key, "val", val)
}

func TestCancelRollsBackAndIsStable(t *testing.T) {
	r := newRig(t, kvRoutes)
	r.handle(t, put("x", "a"), false)
	atk := r.handle(t, put("x", "b"), false)
	rd := r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", "x"), false)

	res, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: atk.ID}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedRequests != 2 { // cancel + affected read
		t.Fatalf("repaired = %d", res.RepairedRequests)
	}
	rec, _ := r.svc.Log.Get(atk.ID)
	if !rec.Skipped || len(rec.Writes) != 0 {
		t.Fatalf("cancelled record = %+v", rec)
	}
	rdRec, _ := r.svc.Log.Get(rd.ID)
	if string(rdRec.Resp.Body) != "a" {
		t.Fatalf("repaired read = %q", rdRec.Resp.Body)
	}

	// Stability: running repair again with no new actions is impossible by
	// API, but a second unrelated repair must not re-touch anything.
	other := r.handle(t, put("y", "z"), false)
	res2, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: other.ID}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RepairedRequests != 1 {
		t.Fatalf("second repair touched %d requests, want 1", res2.RepairedRequests)
	}
}

func TestReplaceResponseMsgEmittedForAireClients(t *testing.T) {
	r := newRig(t, kvRoutes)
	atk := r.handle(t, put("x", "evil"), false)
	// An Aire-enabled client read x; its response must be repaired.
	rd := r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", "x"), true)

	res, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: atk.ID}})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, m := range res.Msgs {
		if m.Kind == OutReplaceResponse && m.RespID == rd.ClientRespID {
			found = true
			if m.NotifierURL != rd.NotifierURL || m.LocalReqID != rd.ID {
				t.Fatalf("bad replace_response: %+v", m)
			}
			if string(m.Resp.Body) != "missing" {
				t.Fatalf("repaired response body = %q", m.Resp.Body)
			}
		}
	}
	if !found {
		t.Fatalf("no replace_response queued: %+v", res.Msgs)
	}
}

func TestNoReplaceResponseForBrowsers(t *testing.T) {
	r := newRig(t, kvRoutes)
	atk := r.handle(t, put("x", "evil"), false)
	r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", "x"), false) // browser
	res, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: atk.ID}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Msgs {
		if m.Kind == OutReplaceResponse {
			t.Fatalf("browser clients have no notifier; got %+v", m)
		}
	}
}

func TestCallDiffDelete(t *testing.T) {
	r := newRig(t, kvRoutes)
	r.handle(t, put("k", "shared-data"), false)
	push := r.handle(t, wire.NewRequest("POST", "/push").WithForm("key", "k", "to", "peer"), false)
	if len(push.Calls) != 1 {
		t.Fatalf("calls = %+v", push.Calls)
	}
	// Replace the data with a local: value; replaying /push skips the call.
	res, err := r.engine.Repair([]Action{{
		Kind: ReplaceReq, ReqID: r.svc.Log.All()[0].ID, NewReq: put("k", "local:secret"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	var del bool
	for _, m := range res.Msgs {
		if m.Kind == OutDelete && m.Target == "peer" && m.RemoteReqID == "peer-req-1" {
			del = true
		}
	}
	if !del {
		t.Fatalf("expected delete for dropped call: %+v", res.Msgs)
	}
}

func TestCallDiffCreateWithAnchors(t *testing.T) {
	r := newRig(t, kvRoutes)
	// Two pushes establish neighbor calls to "peer".
	r.handle(t, put("k", "local:hidden"), false)
	r.handle(t, put("k2", "first"), false)
	r.handle(t, wire.NewRequest("POST", "/push").WithForm("key", "k2", "to", "peer"), false)
	mid := r.handle(t, wire.NewRequest("POST", "/push").WithForm("key", "k", "to", "peer"), false) // no call (local:)
	r.handle(t, put("k3", "third"), false)
	r.handle(t, wire.NewRequest("POST", "/push").WithForm("key", "k3", "to", "peer"), false)

	// Un-hide k: replaying mid's push now issues a brand-new call.
	res, err := r.engine.Repair([]Action{{
		Kind: ReplaceReq, ReqID: r.svc.Log.All()[0].ID, NewReq: put("k", "revealed"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	var created *OutMsg
	for i := range res.Msgs {
		if res.Msgs[i].Kind == OutCreate {
			created = &res.Msgs[i]
		}
	}
	if created == nil {
		t.Fatalf("expected create: %+v", res.Msgs)
	}
	if created.BeforeID != "peer-req-1" || created.AfterID != "peer-req-2" {
		t.Fatalf("create anchors = %q,%q", created.BeforeID, created.AfterID)
	}
	// The replayed handler observed a tentative timeout for the new call.
	midRec, _ := r.svc.Log.Get(mid.ID)
	if len(midRec.Calls) != 1 || !midRec.Calls[0].Tentative || midRec.Calls[0].Resp.Status != wire.StatusTimeout {
		t.Fatalf("created call record = %+v", midRec.Calls)
	}
}

func TestCallDiffReplaceKeepsRemoteIdentity(t *testing.T) {
	r := newRig(t, kvRoutes)
	r.handle(t, put("k", "v1"), false)
	r.handle(t, wire.NewRequest("POST", "/push").WithForm("key", "k", "to", "peer"), false)

	res, err := r.engine.Repair([]Action{{
		Kind: ReplaceReq, ReqID: r.svc.Log.All()[0].ID, NewReq: put("k", "v2"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	var rep *OutMsg
	for i := range res.Msgs {
		if res.Msgs[i].Kind == OutReplace {
			rep = &res.Msgs[i]
		}
	}
	if rep == nil {
		t.Fatalf("expected replace: %+v", res.Msgs)
	}
	if rep.RemoteReqID != "peer-req-1" {
		t.Fatalf("replace must name the original remote request: %+v", rep)
	}
	if rep.Req.Form["v"] != "v2" {
		t.Fatalf("replace payload = %+v", rep.Req.Form)
	}
	if rep.RespID == "" || rep.CallRespID != rep.RespID {
		t.Fatalf("replace must mint a fresh response id: %+v", rep)
	}
}

func TestCallDiffMatchReusesLoggedResponse(t *testing.T) {
	r := newRig(t, kvRoutes)
	r.handle(t, put("k", "same"), false)
	push := r.handle(t, wire.NewRequest("POST", "/push").WithForm("key", "k", "to", "peer"), false)
	probe := r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", "k"), false)
	_ = probe

	// Repairing an unrelated request that forces /push re-execution via its
	// read of k — but with the same value, the call matches and no message
	// is sent to peer.
	calls := r.nCalls
	res, err := r.engine.Repair([]Action{{
		Kind: ReplaceReq, ReqID: r.svc.Log.All()[0].ID, NewReq: put("k", "same"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Msgs {
		if m.Target == "peer" {
			t.Fatalf("matching call must not produce repair messages: %+v", m)
		}
	}
	if r.nCalls != calls {
		t.Fatal("replay must not hit the network for matching calls")
	}
	pushRec, _ := r.svc.Log.Get(push.ID)
	if pushRec.Calls[0].RemoteReqID != "peer-req-1" {
		t.Fatal("matched call lost its remote identity")
	}
}

func TestUnpropagatableCallNotice(t *testing.T) {
	r := newRig(t, kvRoutes)
	r.handle(t, put("k", "data"), false)
	// Simulate a call whose peer was not Aire-enabled: blank RemoteReqID.
	push := r.handle(t, wire.NewRequest("POST", "/push").WithForm("key", "k", "to", "peer"), false)
	_ = r.svc.Log.Update(push.ID, func(rec *repairlog.Record) {
		rec.Calls[0].RemoteReqID = ""
	})

	res, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: push.ID}})
	if err != nil {
		t.Fatal(err)
	}
	var notice bool
	for _, n := range res.Notices {
		if n.Kind == NoticeNoPropagation {
			notice = true
		}
	}
	if !notice {
		t.Fatalf("expected no-propagation notice: %+v", res.Notices)
	}
}

func TestCreateRequestInThePast(t *testing.T) {
	r := newRig(t, kvRoutes)
	first := r.handle(t, put("a", "1"), false)
	rd := r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", "b"), false) // miss
	if rd.Resp.Status != 404 {
		t.Fatalf("precondition: read should miss")
	}

	res, err := r.engine.Repair([]Action{{
		Kind:   CreateReq,
		NewReq: put("b", "42"),
		// Between the first put and the read.
		BeforeID: first.ID, AfterID: rd.ID,
		From: "peer", ClientRespID: "peer-resp-9", NotifierURL: "aire://peer/aire/notify",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CreatedIDs) != 1 {
		t.Fatalf("created ids = %v", res.CreatedIDs)
	}
	// The created request ran and the later read now sees b.
	rdRec, _ := r.svc.Log.Get(rd.ID)
	if string(rdRec.Resp.Body) != "42" {
		t.Fatalf("read after create = %q", rdRec.Resp.Body)
	}
	// Its response goes back to the creator via replace_response.
	var toCreator bool
	for _, m := range res.Msgs {
		if m.Kind == OutReplaceResponse && m.RespID == "peer-resp-9" {
			toCreator = true
		}
	}
	if !toCreator {
		t.Fatalf("created request's response not propagated: %+v", res.Msgs)
	}
	// The created record sits between its anchors on the timeline.
	cRec, _ := r.svc.Log.Get(res.CreatedIDs[0])
	if !(cRec.TS > first.TS && cRec.TS < rd.TS) {
		t.Fatalf("created TS %d not in (%d, %d)", cRec.TS, first.TS, rd.TS)
	}
	if !cRec.Synthetic {
		t.Fatal("created record must be marked synthetic")
	}
}

func TestErrorPaths(t *testing.T) {
	r := newRig(t, kvRoutes)
	r.handle(t, put("a", "1"), false)

	if _, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: "nope"}}); err == nil {
		t.Fatal("cancel of unknown request must fail")
	}
	if _, err := r.engine.Repair([]Action{{Kind: CreateReq, NewReq: put("b", "2"), BeforeID: "nope"}}); err == nil {
		t.Fatal("create with unknown anchor must fail")
	}
	if _, err := r.engine.Repair([]Action{{Kind: ReplaceCallResp, RespID: "nope"}}); err == nil {
		t.Fatal("replace_response for unknown call must fail")
	}
	if _, err := r.engine.Repair(nil); err == nil {
		t.Fatal("empty repair must fail")
	}

	// Garbage collection converts unknown-request into ErrGarbageCollected.
	r.svc.Log.GC(r.svc.Clock.Now() + 1)
	_, err := r.engine.Repair([]Action{{Kind: CancelReq, ReqID: "ancient"}})
	if err == nil || !strings.Contains(err.Error(), "garbage-collected") {
		t.Fatalf("want garbage-collected error, got %v", err)
	}
}

func TestReplaceCallRespTriggersReexecution(t *testing.T) {
	r := newRig(t, func(svc *web.Service) {
		svc.Schema.Register("kv")
		svc.Router.Handle("POST", "/fetch", func(c *web.Ctx) wire.Response {
			resp := c.Call("up", wire.NewRequest("GET", "/v"))
			if err := c.DB.Put("kv", "cache", orm.Fields("v", string(resp.Body))); err != nil {
				return c.Error(500, err.Error())
			}
			return c.OK("cached")
		})
	})
	r.remote = func(target string, req wire.Request) wire.Response {
		return wire.NewResponse(200, "old-value")
	}
	fetch := r.handle(t, wire.NewRequest("POST", "/fetch"), false)
	respID := fetch.Calls[0].RespID

	res, err := r.engine.Repair([]Action{{
		Kind: ReplaceCallResp, RespID: respID,
		NewResp: wire.NewResponse(200, "new-value"), RemoteReqID: "up-req-42",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairedRequests != 1 {
		t.Fatalf("repaired = %d", res.RepairedRequests)
	}
	v, ok := r.svc.Store.Get(vdb.Key{Model: "kv", ID: "cache"})
	if !ok || v.Fields["v"] != "new-value" {
		t.Fatalf("cache = %+v %v", v, ok)
	}
	rec, _ := r.svc.Log.Get(fetch.ID)
	if rec.Calls[0].RemoteReqID != "up-req-42" {
		t.Fatal("call record did not learn the remote request id")
	}
}

func TestConservativeEngineRepairsMore(t *testing.T) {
	// A request is replaced by a semantically identical one. Precise
	// (value-based) checking notices downstream readers observe the same
	// value and skips them; conservative key-level tainting re-executes
	// every reader of the touched key.
	mk := func(precise bool) int {
		r := newRig(t, kvRoutes)
		r.engine.Cfg.PreciseReadCheck = precise
		target := r.handle(t, put("y", "same-value"), false)
		r.handle(t, wire.NewRequest("GET", "/get").WithForm("key", "y"), false)
		res, err := r.engine.Repair([]Action{{
			Kind: ReplaceReq, ReqID: target.ID, NewReq: put("y", "same-value"),
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res.RepairedRequests
	}
	if precise := mk(true); precise != 1 {
		t.Fatalf("precise repaired %d, want 1 (just the replaced request)", precise)
	}
	if conservative := mk(false); conservative != 2 {
		t.Fatalf("conservative repaired %d, want 2 (replace + tainted reader)", conservative)
	}
}
