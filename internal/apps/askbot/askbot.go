// Package askbot implements the Askbot-like question-and-answer forum of
// the paper's main attack scenario (§7.1, Figure 4).
//
// Users sign up through an external OAuth provider: registration verifies
// the claimed email address with the provider (requests (3) and (4) of
// Figure 4). Questions containing code snippets are crossposted to a
// Dpaste-like pastebin (request (6)). A daily summary email — an external
// effect Aire cannot undo, only compensate — reports the day's questions.
package askbot

import (
	"fmt"
	"strings"

	"aire/internal/core"
	"aire/internal/orm"
	"aire/internal/warp"
	"aire/internal/web"
	"aire/internal/wire"
)

// Model names. Like the real Askbot, a post touches several tables:
// the question itself, an immutable-ish revision row, an activity-feed
// entry, and the author's profile counters.
const (
	ModelUser     = "user"     // id = username; fields: email, oauth_token, posts, reputation
	ModelSession  = "session"  // id = session token; fields: user
	ModelQuestion = "question" // id; fields: title, body, author, paste_id, rev
	ModelAnswer   = "answer"   // id; fields: question, body, author
	ModelRevision = "revision" // id; fields: post, body, author, at
	ModelActivity = "activity" // id; fields: kind, actor, object, at
	ModelVote     = "vote"     // id = voter|question; fields: voter, question, dir
	ModelTag      = "tag"      // id = tag name; fields: count
)

// App is the forum application.
type App struct {
	// ServiceName is the transport identity (default "askbot").
	ServiceName string
	// OAuthService is the identity provider's service name.
	OAuthService string
	// PasteService is the pastebin's service name.
	PasteService string
	// AdminToken authorizes admin endpoints.
	AdminToken string
}

// New returns an Askbot app wired to the given provider and pastebin.
func New(oauthService, pasteService, adminToken string) *App {
	return &App{
		ServiceName:  "askbot",
		OAuthService: oauthService,
		PasteService: pasteService,
		AdminToken:   adminToken,
	}
}

// Name implements core.App.
func (a *App) Name() string { return a.ServiceName }

// Register installs models and routes.
func (a *App) Register(svc *web.Service) {
	svc.Schema.Register(ModelUser)
	svc.Schema.Register(ModelSession)
	svc.Schema.Register(ModelQuestion)
	svc.Schema.Register(ModelAnswer)
	svc.Schema.Register(ModelRevision)
	svc.Schema.Register(ModelActivity)
	svc.Schema.Register(ModelVote)
	svc.Schema.Register(ModelTag)

	// POST /register creates a local account from an OAuth identity
	// (request (3) of Figure 4); the email claim is verified with the
	// provider (request (4)). On success a session token is returned.
	svc.Router.Handle("POST", "/register", func(c *web.Ctx) wire.Response {
		name, email, tok := c.Form("name"), c.Form("email"), c.Form("oauth_token")
		if name == "" || email == "" || tok == "" {
			return c.Error(400, "name, email, oauth_token required")
		}
		verify := c.Call(a.OAuthService, wire.NewRequest("POST", "/verify_email").
			WithForm("email", email, "token", tok))
		if !verify.OK() {
			return c.Error(403, "email verification failed: "+string(verify.Body))
		}
		if err := c.DB.Put(ModelUser, name, orm.Fields(
			"email", email, "oauth_token", tok, "posts", "0", "reputation", "1")); err != nil {
			return c.Error(500, err.Error())
		}
		sess := "sess-" + c.NewID()
		if err := c.DB.Put(ModelSession, sess, orm.Fields("user", name)); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(sess)
	})

	// POST /ask posts a question (request (5)); code snippets are
	// crossposted to the pastebin (request (6)).
	svc.Router.Handle("POST", "/ask", func(c *web.Ctx) wire.Response {
		user, ok := a.sessionUser(c)
		if !ok {
			return c.Error(403, "invalid session")
		}
		title, body, code := c.Form("title"), c.Form("body"), c.Form("code")
		if title == "" {
			return c.Error(400, "title required")
		}
		pasteID := ""
		if code != "" {
			paste := c.Call(a.PasteService, wire.NewRequest("POST", "/paste").
				WithForm("code", code, "author", user))
			if paste.OK() {
				pasteID = string(paste.Body)
			}
		}
		qid := "q-" + c.NewID()
		if err := c.DB.Put(ModelQuestion, qid, orm.Fields(
			"title", title, "body", body, "author", user, "paste_id", pasteID, "rev", "1")); err != nil {
			return c.Error(500, err.Error())
		}
		// Like the real Askbot, a post also records a revision, an
		// activity-feed entry, and bumps the author's profile counters.
		now := fmt.Sprint(c.Now())
		if err := c.DB.Put(ModelRevision, "rev-"+c.NewID(), orm.Fields(
			"post", qid, "body", body, "author", user, "at", now)); err != nil {
			return c.Error(500, err.Error())
		}
		if err := c.DB.Put(ModelActivity, "act-"+c.NewID(), orm.Fields(
			"kind", "ask", "actor", user, "object", qid, "at", now)); err != nil {
			return c.Error(500, err.Error())
		}
		if _, err := c.DB.Update(ModelUser, user, func(f map[string]string) {
			f["posts"] = fmt.Sprint(atoi(f["posts"]) + 1)
			f["reputation"] = fmt.Sprint(atoi(f["reputation"]) + 2)
		}); err != nil {
			return c.Error(500, err.Error())
		}
		// Tag counters (comma-separated "tags" form value).
		for _, tag := range strings.Split(c.Form("tags"), ",") {
			tag = strings.TrimSpace(tag)
			if tag == "" {
				continue
			}
			n := 0
			if o, ok := c.DB.Get(ModelTag, tag); ok {
				n = o.Int("count")
			}
			if err := c.DB.Put(ModelTag, tag, orm.Fields("count", fmt.Sprint(n+1))); err != nil {
				return c.Error(500, err.Error())
			}
		}
		return c.OK(qid)
	})

	// POST /vote casts (or changes) a user's vote on a question and adjusts
	// the author's reputation — the "ratings" state the paper lists among
	// what Aire must repair on Askbot.
	svc.Router.Handle("POST", "/vote", func(c *web.Ctx) wire.Response {
		voter, ok := a.sessionUser(c)
		if !ok {
			return c.Error(403, "invalid session")
		}
		qid, dir := c.Form("question"), c.Form("dir")
		if dir != "up" && dir != "down" {
			return c.Error(400, "dir must be up or down")
		}
		q, ok := c.DB.Get(ModelQuestion, qid)
		if !ok {
			return c.Error(404, "no such question")
		}
		if q.Get("author") == voter {
			return c.Error(400, "cannot vote on your own question")
		}
		voteID := voter + "|" + qid
		prev := ""
		if v, ok := c.DB.Get(ModelVote, voteID); ok {
			prev = v.Get("dir")
		}
		if prev == dir {
			return c.OK("unchanged")
		}
		if err := c.DB.Put(ModelVote, voteID, orm.Fields("voter", voter, "question", qid, "dir", dir)); err != nil {
			return c.Error(500, err.Error())
		}
		delta := 0
		switch {
		case prev == "" && dir == "up":
			delta = 5
		case prev == "" && dir == "down":
			delta = -2
		case prev == "up" && dir == "down":
			delta = -7
		case prev == "down" && dir == "up":
			delta = 7
		}
		if _, err := c.DB.Update(ModelUser, q.Get("author"), func(f map[string]string) {
			f["reputation"] = fmt.Sprint(atoi(f["reputation"]) + delta)
		}); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK("voted " + dir)
	})

	// GET /tags lists tag usage counts.
	svc.Router.Handle("GET", "/tags", func(c *web.Ctx) wire.Response {
		var b strings.Builder
		for _, tg := range c.DB.List(ModelTag) {
			fmt.Fprintf(&b, "%s=%s\n", tg.ID, tg.Get("count"))
		}
		return c.OK(b.String())
	})

	// POST /answer posts an answer to a question.
	svc.Router.Handle("POST", "/answer", func(c *web.Ctx) wire.Response {
		user, ok := a.sessionUser(c)
		if !ok {
			return c.Error(403, "invalid session")
		}
		qid := c.Form("question")
		if _, ok := c.DB.Get(ModelQuestion, qid); !ok {
			return c.Error(404, "no such question")
		}
		aid := "a-" + c.NewID()
		if err := c.DB.Put(ModelAnswer, aid, orm.Fields(
			"question", qid, "body", c.Form("body"), "author", user)); err != nil {
			return c.Error(500, err.Error())
		}
		return c.OK(aid)
	})

	// GET /questions renders the question-list page (the read-heavy
	// workload of Table 4). Like the real page, it joins each question with
	// its author's profile and renders markup.
	svc.Router.Handle("GET", "/questions", func(c *web.Ctx) wire.Response {
		var b strings.Builder
		b.WriteString("<html><body><h1>All Questions</h1><ul>\n")
		for _, q := range c.DB.List(ModelQuestion) {
			author := q.Get("author")
			rep := "?"
			if u, ok := c.DB.Get(ModelUser, author); ok {
				rep = u.Get("reputation")
			}
			fmt.Fprintf(&b, "<li id=%q><a>%s</a> <span class=author>%s (rep %s)</span>",
				q.ID, escape(q.Get("title")), escape(author), rep)
			if p := q.Get("paste_id"); p != "" {
				fmt.Fprintf(&b, " <a class=code href=\"dpaste://%s\">code</a>", p)
			}
			b.WriteString("</li>\n")
		}
		b.WriteString("</ul></body></html>\n")
		return c.OK(b.String())
	})

	// GET /question shows one question with its answers.
	svc.Router.Handle("GET", "/question", func(c *web.Ctx) wire.Response {
		q, ok := c.DB.Get(ModelQuestion, c.Form("id"))
		if !ok {
			return c.Error(404, "no such question")
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%q by %s\n%s\n", q.Get("title"), q.Get("author"), q.Get("body"))
		for _, ans := range c.DB.Select(ModelAnswer, func(o orm.Obj) bool {
			return o.Get("question") == c.Form("id")
		}) {
			fmt.Fprintf(&b, "answer by %s: %s\n", ans.Get("author"), ans.Get("body"))
		}
		return c.OK(b.String())
	})

	// POST /admin/daily_email sends the daily activity summary — an
	// external effect; under repair Aire compensates by notifying the
	// administrator of the corrected contents (§7.1).
	svc.Router.Handle("POST", "/admin/daily_email", func(c *web.Ctx) wire.Response {
		if c.Header("X-Admin-Token") != a.AdminToken {
			return c.Error(403, "admin token required")
		}
		var b strings.Builder
		for _, q := range c.DB.List(ModelQuestion) {
			fmt.Fprintf(&b, "%s by %s; ", q.Get("title"), q.Get("author"))
		}
		c.Effect("email", "daily summary: "+b.String())
		return c.OK("email sent")
	})
}

func atoi(s string) int {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	n := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			break
		}
		n = n*10 + int(ch-'0')
	}
	if neg {
		return -n
	}
	return n
}

// escape performs minimal HTML escaping for rendered pages.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func (a *App) sessionUser(c *web.Ctx) (string, bool) {
	s, ok := c.DB.Get(ModelSession, c.Form("session"))
	if !ok {
		return "", false
	}
	return s.Get("user"), true
}

// Authorize implements the same-principal repair policy (§7.3): a repair is
// allowed only on behalf of the user (or peer service) that issued the
// original request.
func (a *App) Authorize(ac core.AuthzRequest) bool {
	switch {
	case ac.Kind == warp.OutReplaceResponse:
		// The transport authenticated the producing server; additionally
		// only responses that server itself produced reach this point.
		return true
	case ac.Kind == warp.OutCreate:
		return ac.From != ""
	case ac.OriginalFrom != "":
		return ac.From == ac.OriginalFrom
	}
	orig := ac.Original
	if strings.HasPrefix(orig.Path, "/admin/") {
		return ac.Carrier.Header["X-Admin-Token"] == a.AdminToken
	}
	if sess := orig.Form["session"]; sess != "" {
		// Same user: carrier session must resolve (at the original time) to
		// the same user as the original session.
		origUser, ok := ac.Snapshot.Get(ModelSession, sess)
		if !ok {
			return false
		}
		repairUser, ok := ac.Snapshot.Get(ModelSession, ac.Carrier.Header["X-Repair-Session"])
		return ok && repairUser.Get("user") == origUser.Get("user")
	}
	if tok := orig.Form["oauth_token"]; tok != "" {
		// Registration repair: carrier must present the same OAuth token.
		return ac.Carrier.Header["X-Repair-OAuth-Token"] == tok
	}
	return false
}
