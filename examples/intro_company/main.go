// Command intro_company replays the paper's opening example (§1): a small
// company runs a customer-management service (Salesforce-like) and an
// employee-management service (Workday-like), with permissions managed by a
// centralized access-control service. An attacker who gains write access
// through the access-control service corrupts both dependents; cancelling
// the bad grants undoes everything, with repair propagating to the
// dependents purely as corrected permission-check *responses*.
package main

import (
	"fmt"
	"log"

	"aire"
	"aire/internal/apps/crm"
	"aire/internal/apps/permsvc"
)

const adminToken = "perm-admin"

func main() {
	bus := aire.NewBus()
	perms := aire.NewService(permsvc.New(adminToken), bus)
	sales := aire.NewService(crm.New("perms"), bus)
	hrApp := crm.New("perms")
	hrApp.ServiceName = "workday"
	hr := aire.NewService(hrApp, bus)
	bus.Register("perms", perms)
	bus.Register("crm", sales)
	bus.Register("workday", hr)

	call := func(svc string, req aire.Request) aire.Response {
		resp, err := bus.Call("", svc, req)
		if err != nil {
			log.Fatalf("%s: %v", svc, err)
		}
		return resp
	}
	grant := func(svc, user, level string) aire.Response {
		return call("perms", aire.NewRequest("POST", "/grant").
			WithForm("svc", svc, "user", user, "level", level).
			WithHeader("X-Admin-Token", adminToken))
	}
	show := func(svc, id string) {
		resp := call(svc, aire.NewRequest("GET", "/customer").WithForm("user", "alice", "id", id))
		fmt.Printf("   %-8s %s\n", svc+":", resp.Body)
	}

	fmt.Println("1. setup: alice manages records on both services")
	grant("crm", "alice", "rw")
	grant("workday", "alice", "rw")
	custID := string(call("crm", aire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "ACME Corp", "notes", "renewal Q3")).Body)
	empID := string(call("workday", aire.NewRequest("POST", "/customer").
		WithForm("user", "alice", "name", "Jo Engineer", "notes", "L5")).Body)
	show("crm", custID)
	show("workday", empID)

	fmt.Println("\n2. the attack: mallory gains write access via the access-control service")
	g1 := grant("crm", "mallory", "rw")
	g2 := grant("workday", "mallory", "rw")
	call("crm", aire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "id", custID, "name", "ACME Corp", "notes", "OWNED"))
	call("workday", aire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "id", empID, "name", "Jo Engineer", "notes", "FIRED lol"))
	show("crm", custID)
	show("workday", empID)

	fmt.Println("\n3. recovery: the perms admin cancels the two bad grants")
	for _, g := range []aire.Response{g1, g2} {
		if _, err := perms.ApplyLocal(aire.Cancel(g.Header[aire.HdrRequestID])); err != nil {
			log.Fatal(err)
		}
	}
	aire.Settle(20, perms, sales, hr)
	show("crm", custID)
	show("workday", empID)
	if resp := call("crm", aire.NewRequest("POST", "/customer").
		WithForm("user", "mallory", "name", "again?")); !resp.OK() {
		fmt.Printf("   mallory locked out again: %d %s\n", resp.Status, resp.Body)
	}
}
