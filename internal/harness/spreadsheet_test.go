package harness

import (
	"strings"
	"testing"

	"aire/internal/core"
	"aire/internal/wire"
)

// TestLaxPermissions reproduces §7.1's "lax permissions" scenario
// (Figure 5): an administrator mistakenly adds the attacker to the master
// ACL; the directory distributes it; the attacker corrupts both sheets;
// cancelling the ACL mistake undoes everything.
func TestLaxPermissions(t *testing.T) {
	s := NewSheetScenario(false, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunLaxPermissionAttack(); err != nil {
		t.Fatal(err)
	}
	s.TB.MustCall("sheetA", setCell("budget", "150", LegitUser, LegitToken)) // legit write after attack
	s.ExpectedBudgetA = "150"

	if v, _ := s.cellValue("sheetA", "budget"); v != "150" {
		t.Fatalf("pre-repair budget = %q", v)
	}
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}
	// The attacker's write is gone but the later legitimate write (which
	// re-executed successfully) is preserved.
	if v, _ := s.cellValue("sheetA", "budget"); v != "150" {
		t.Fatalf("post-repair budget = %q, want 150", v)
	}
	// The attacker can no longer write.
	if resp := s.TB.Call("sheetA", setCell("budget", "0wned again", AttackerUser, AttackerToken)); resp.OK() {
		t.Fatal("attacker still has write access after repair")
	}
}

// TestWorldWritableDirectory reproduces the harder §7.1 variant: the
// directory itself is world-writable, so the attacker self-grants access.
// Repair of the single misconfiguration unwinds the self-grant, the
// distribution, and the corruption.
func TestWorldWritableDirectory(t *testing.T) {
	s := NewSheetScenario(false, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunWorldWritableAttack(); err != nil {
		t.Fatal(err)
	}
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}
	// The attacker's self-granted master ACL entries are gone from the
	// directory too.
	if resp := s.TB.Call("dir", getCell("acl:sheetA:"+AttackerUser)); resp.OK() {
		t.Fatalf("master ACL still lists attacker: %s", resp.Body)
	}
	// And the directory is no longer world-writable.
	if resp := s.TB.Call("dir", setCell("acl:sheetA:eve", "rw", "eve", "bogus")); resp.OK() {
		t.Fatal("directory still world-writable")
	}
}

// TestCorruptDataSync reproduces §7.1's data-synchronization scenario: the
// attacker corrupts a synced cell on A and the corruption propagates to B
// via A's sync script; repair follows the same path.
func TestCorruptDataSync(t *testing.T) {
	s := NewSheetScenario(true, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunCorruptSyncAttack(); err != nil {
		t.Fatal(err)
	}
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}
	// Both copies are back to the legitimate value.
	for _, svc := range []string{"sheetA", "sheetB"} {
		if v, _ := s.cellValue(svc, "shared:plan"); v != "Q3 roadmap" {
			t.Fatalf("%s shared:plan = %q, want Q3 roadmap", svc, v)
		}
	}
}

// TestPartialRepairSheetBOffline reproduces §7.2 for the spreadsheets:
// with B offline, A and the directory repair immediately; B catches up
// later.
func TestPartialRepairSheetBOffline(t *testing.T) {
	s := NewSheetScenario(false, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunLaxPermissionAttack(); err != nil {
		t.Fatal(err)
	}
	s.TB.SetOffline("sheetB", true)
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}

	// A is repaired; further unauthorized access is blocked right away.
	if v, _ := s.cellValue("sheetA", "budget"); v == "0wned" {
		t.Fatal("sheetA unrepaired while B offline")
	}
	if resp := s.TB.Call("sheetA", setCell("x", "y", AttackerUser, AttackerToken)); resp.OK() {
		t.Fatal("attacker still authorized on sheetA")
	}
	if s.TB.QueuedMessages() == 0 {
		t.Fatal("expected queued repair for offline sheetB")
	}

	s.TB.SetOffline("sheetB", false)
	s.TB.Settle(20)
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}
}

// TestPartialRepairExpiredToken reproduces §7.2's authorization-failure
// experiment: B rejects repair while the director's token is expired; after
// a refresh (the user's next login), retry completes the repair.
func TestPartialRepairExpiredToken(t *testing.T) {
	s := NewSheetScenario(false, core.DefaultConfig())
	s.RunLegitTraffic()
	if err := s.RunLaxPermissionAttack(); err != nil {
		t.Fatal(err)
	}
	// Expire the director's and attacker's tokens on B before repair: B
	// will reject both the ACL-update delete and the corrupt-write delete.
	for _, u := range []string{DirectorUser, AttackerUser} {
		s.TB.MustCall("sheetB", wire.NewRequest("POST", "/token/expire").
			WithForm("user", u).WithHeader("X-Bootstrap", BootstrapToken))
	}

	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}

	// B is effectively offline for repair: held messages + notifications.
	var heldMsgs []string
	for _, ctrl := range []*core.Controller{s.Dir, s.A} {
		for _, p := range ctrl.Pending() {
			if p.Held && p.Msg.Target == "sheetB" {
				heldMsgs = append(heldMsgs, p.MsgID)
			}
		}
	}
	if len(heldMsgs) == 0 {
		t.Fatal("expected held repair messages for sheetB")
	}
	if v, _ := s.cellValue("sheetB", "budget"); v != "0wned" {
		t.Fatalf("sheetB should still be corrupt, budget = %q", v)
	}

	// The user logs in again: tokens refreshed, pending repairs retried.
	for _, u := range []string{DirectorUser, AttackerUser} {
		s.TB.MustCall("sheetB", wire.NewRequest("POST", "/token/refresh").
			WithForm("user", u).WithHeader("X-Bootstrap", BootstrapToken))
	}
	for _, ctrl := range []*core.Controller{s.Dir, s.A} {
		for _, p := range ctrl.Pending() {
			if p.Held {
				if err := ctrl.Retry(p.MsgID, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	s.TB.Settle(20)
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("post-repair problems:\n%s", strings.Join(problems, "\n"))
	}
}
