package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestBench4ReportsIndexBytes: `airebench -table bench4` must report the
// approximate secondary-index memory of the store and the log alongside
// the repair timings — the storage overhead ROADMAP flagged as
// unaccounted. One warm point with a single timed pass is enough to
// assert the columns exist and carry non-zero, growing values.
func TestBench4ReportsIndexBytes(t *testing.T) {
	var buf bytes.Buffer
	bench4(&buf, 1, "")
	out := buf.String()
	for _, col := range []string{"db-idx-bytes", "log-idx-bytes"} {
		if !strings.Contains(out, col) {
			t.Fatalf("bench4 output lacks the %q column:\n%s", col, out)
		}
	}
	// Every data row ends with the two byte counts; all must be positive,
	// and the log-index bytes must grow with unaffected traffic (the
	// overhead scales with recorded dependencies, which is the point of
	// accounting for it).
	var lastLogIdx int64
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 10 || fields[3] != "ns" || fields[5] != "ns" {
			continue
		}
		dbIdx, err1 := strconv.ParseInt(fields[8], 10, 64)
		logIdx, err2 := strconv.ParseInt(fields[9], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		rows++
		if dbIdx <= 0 || logIdx <= 0 {
			t.Fatalf("index bytes not positive in row %q", line)
		}
		if logIdx <= lastLogIdx {
			t.Fatalf("log index bytes did not grow with unaffected traffic: %d after %d\n%s", logIdx, lastLogIdx, out)
		}
		lastLogIdx = logIdx
	}
	if rows != 3 {
		t.Fatalf("expected 3 data rows with index-byte columns, parsed %d:\n%s", rows, out)
	}
}
