package wire

import (
	"testing"
	"testing/quick"
)

func TestCanonicalKeyIgnoresAireHeaders(t *testing.T) {
	a := NewRequest("POST", "/put").WithForm("k", "x").WithHeader("Cookie", "abc")
	b := a.WithHeader(HdrRequestID, "r1", HdrResponseID, "s1", HdrNotifierURL, "aire://x/aire/notify", HdrRepair, "replace",
		HdrDeliveryID, "x-dlv-3", HdrGeneration, "2", HdrOrigin, "x")
	if !a.Equal(b) {
		t.Fatalf("requests differing only in Aire headers must be equal:\n%q\n%q", a.CanonicalKey(), b.CanonicalKey())
	}
}

func TestIsAireHeader(t *testing.T) {
	for _, h := range []string{HdrRequestID, HdrResponseID, HdrNotifierURL, HdrRepair, HdrDeliveryID, HdrGeneration, HdrOrigin} {
		if !IsAireHeader(h) {
			t.Errorf("IsAireHeader(%q) = false", h)
		}
	}
	for _, h := range []string{"Cookie", "Authorization", "Aire-Other"} {
		if IsAireHeader(h) {
			t.Errorf("IsAireHeader(%q) = true", h)
		}
	}
}

func TestCanonicalKeySensitivity(t *testing.T) {
	base := NewRequest("POST", "/put").WithForm("k", "x")
	cases := map[string]Request{
		"method": {Method: "GET", Path: "/put", Form: map[string]string{"k": "x"}},
		"path":   base.Clone().WithForm(), // same, then change path below
		"form":   base.WithForm("k", "y"),
		"header": base.WithHeader("Cookie", "z"),
		"body":   func() Request { r := base.Clone(); r.Body = []byte("b"); return r }(),
	}
	cases["path"] = Request{Method: "POST", Path: "/other", Form: map[string]string{"k": "x"}}
	for name, r := range cases {
		if base.Equal(r) {
			t.Errorf("%s change should make requests differ", name)
		}
	}
}

func TestResponseEqual(t *testing.T) {
	a := NewResponse(200, "hello")
	b := a.Clone()
	b.Header[HdrRequestID] = "r9"
	if !a.Equal(b) {
		t.Fatal("Aire headers must not affect response equality")
	}
	c := NewResponse(404, "hello")
	if a.Equal(c) {
		t.Fatal("status must affect response equality")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := NewRequest("POST", "/x").WithForm("a", "1", "b", "2").WithHeader("Cookie", "u")
	r.Body = []byte{0, 1, 2, 255}
	got, err := DecodeRequest(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) || got.Header["Cookie"] != "u" {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}

	resp := NewResponse(201, "made")
	resp.Header["X-Extra"] = "1"
	got2, err := DecodeResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(resp) || got2.Header["X-Extra"] != "1" {
		t.Fatalf("response round trip mismatch: %+v vs %+v", got2, resp)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := NewRequest("POST", "/x").WithForm("a", "1")
	c := r.Clone()
	c.Form["a"] = "2"
	c.Header["H"] = "v"
	if r.Form["a"] != "1" || r.Header["H"] != "" {
		t.Fatal("clone shares maps with original")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := func(a, b, v1, v2 string) bool {
		r := NewRequest("POST", "/p").WithForm(a, v1).WithForm(b, v2)
		return string(r.Encode()) == string(r.Clone().Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithFormDoesNotMutateReceiver(t *testing.T) {
	r := NewRequest("GET", "/g")
	_ = r.WithForm("k", "v")
	if len(r.Form) != 0 {
		t.Fatal("WithForm mutated receiver")
	}
}

func TestOK(t *testing.T) {
	if !NewResponse(204, "").OK() || NewResponse(404, "").OK() || NewResponse(199, "").OK() {
		t.Fatal("OK boundary conditions wrong")
	}
}
