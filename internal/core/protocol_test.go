package core

import (
	"strings"
	"testing"

	"aire/internal/warp"
	"aire/internal/wire"
)

// TestRepairProtocol drives all four Table 1 operations through the wire
// API (not ApplyLocal), as a peer service would.
func TestRepairProtocol(t *testing.T) {
	tb := newTestbed()
	tb.add(&kvApp{name: "store"}, DefaultConfig())

	first := tb.call("store", put("x", "v1"))
	second := tb.call("store", put("y", "v2"))

	// replace.
	newReq := put("x", "v1-fixed")
	rep := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "replace", wire.HdrRequestID, first.Header[wire.HdrRequestID])
	rep.Body = newReq.Encode()
	if resp := tb.call("store", rep); !resp.OK() {
		t.Fatalf("replace: %d %s", resp.Status, resp.Body)
	}
	if got := string(tb.call("store", get("x")).Body); got != "v1-fixed" {
		t.Fatalf("after replace x = %q", got)
	}

	// create between first and second.
	mk := put("z", "created")
	cre := wire.NewRequest("POST", "/aire/repair").WithHeader(wire.HdrRepair, "create")
	cre.Form["before_id"] = first.Header[wire.HdrRequestID]
	cre.Form["after_id"] = second.Header[wire.HdrRequestID]
	cre.Body = mk.Encode()
	cresp := tb.call("store", cre)
	if !cresp.OK() {
		t.Fatalf("create: %d %s", cresp.Status, cresp.Body)
	}
	createdID := cresp.Header[wire.HdrRequestID]
	if createdID == "" {
		t.Fatal("create must return the new request's ID")
	}
	if got := string(tb.call("store", get("z")).Body); got != "created" {
		t.Fatalf("after create z = %q", got)
	}

	// delete the created request by its returned ID.
	del := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, createdID)
	if resp := tb.call("store", del); !resp.OK() {
		t.Fatalf("delete: %d %s", resp.Status, resp.Body)
	}
	if resp := tb.call("store", get("z")); resp.Status != 404 {
		t.Fatalf("after delete z: %d", resp.Status)
	}
}

func TestRepairAPIErrorPaths(t *testing.T) {
	tb := newTestbed()
	c := tb.add(&kvApp{name: "store"}, DefaultConfig())
	real := tb.call("store", put("x", "v"))

	cases := []struct {
		name   string
		req    wire.Request
		status int
	}{
		{"unknown op", wire.NewRequest("POST", "/aire/repair").WithHeader(
			wire.HdrRepair, "explode", wire.HdrRequestID, real.Header[wire.HdrRequestID]), 400},
		{"missing target", wire.NewRequest("POST", "/aire/repair").WithHeader(
			wire.HdrRepair, "delete", wire.HdrRequestID, "no-such-id"), 404},
		{"bad replace payload", func() wire.Request {
			r := wire.NewRequest("POST", "/aire/repair").WithHeader(
				wire.HdrRepair, "replace", wire.HdrRequestID, real.Header[wire.HdrRequestID])
			r.Body = []byte("{not json")
			return r
		}(), 400},
		{"bad create payload", func() wire.Request {
			r := wire.NewRequest("POST", "/aire/repair").WithHeader(wire.HdrRepair, "create")
			r.Body = []byte("nope")
			return r
		}(), 400},
		{"create with unknown anchor", func() wire.Request {
			r := wire.NewRequest("POST", "/aire/repair").WithHeader(wire.HdrRepair, "create")
			r.Form["before_id"] = "ghost"
			r.Body = put("q", "1").Encode()
			return r
		}(), 400},
	}
	for _, tc := range cases {
		if resp := tb.call("store", tc.req); resp.Status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.Status, tc.status, resp.Body)
		}
	}
	// State untouched by all the failures.
	if got := string(tb.call("store", get("x")).Body); got != "v" {
		t.Fatalf("error paths mutated state: %q", got)
	}
	// After GC, missing targets are permanently unavailable (410).
	c.GC(c.Svc.Clock.Now() + 1)
	gone := wire.NewRequest("POST", "/aire/repair").WithHeader(
		wire.HdrRepair, "delete", wire.HdrRequestID, "ancient")
	if resp := tb.call("store", gone); resp.Status != 410 {
		t.Fatalf("post-GC repair: %d, want 410", resp.Status)
	}
}

func TestTokenHandshakeSecurity(t *testing.T) {
	tb := newTestbed()
	store := tb.add(&kvApp{name: "store"}, DefaultConfig())
	tb.add(&kvApp{name: "reader", upstream: "store"}, DefaultConfig())
	tb.add(&kvApp{name: "eve"}, DefaultConfig())

	tb.call("store", put("x", "a"))
	attack := tb.call("store", put("x", "b"))
	tb.call("reader", wire.NewRequest("POST", "/fetch").WithForm("key", "x"))

	if _, err := store.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]}); err != nil {
		t.Fatal(err)
	}
	// Deliver the notify but intercept the token to test fetch security:
	// only the addressed audience may fetch the payload.
	pend := store.Pending()
	if len(pend) != 1 || pend[0].Msg.Kind != warp.OutReplaceResponse {
		t.Fatalf("pending = %+v", pend)
	}
	store.Flush() // mints + delivers the token to reader, which applies it

	// A replayed fetch by another service must fail (token consumed and
	// audience-checked).
	fetch := wire.NewRequest("POST", "/aire/fetch_repair").WithForm("token", "store-tok-guess")
	if resp, _ := tb.bus.Call("eve", "store", fetch); resp.Status != 404 {
		t.Fatalf("guessed token: %d", resp.Status)
	}
}

func TestNotifyValidation(t *testing.T) {
	tb := newTestbed()
	tb.add(&kvApp{name: "reader", upstream: "store"}, DefaultConfig())
	tb.add(&kvApp{name: "store"}, DefaultConfig())

	// Missing fields.
	if resp := tb.call("reader", wire.NewRequest("POST", "/aire/notify")); resp.Status != 400 {
		t.Fatalf("empty notify: %d", resp.Status)
	}
	// Server that does not exist.
	bad := wire.NewRequest("POST", "/aire/notify").WithForm("token", "t", "server", "ghost")
	if resp := tb.call("reader", bad); resp.Status != 503 {
		t.Fatalf("notify with unknown server: %d", resp.Status)
	}
	// Server exists but token is unknown -> fetch fails -> 502.
	bad2 := wire.NewRequest("POST", "/aire/notify").WithForm("token", "t", "server", "store")
	if resp := tb.call("reader", bad2); resp.Status != 502 {
		t.Fatalf("notify with bogus token: %d", resp.Status)
	}
}

// TestSpoofedReplaceResponseRejected: a malicious service cannot repair a
// response produced by someone else — the client verifies the call's
// recorded target against the notifying server (§3.1's authentication).
func TestSpoofedReplaceResponseRejected(t *testing.T) {
	tb := newTestbed()
	tb.add(&kvApp{name: "reader", upstream: "store"}, DefaultConfig())
	tb.add(&kvApp{name: "store"}, DefaultConfig())
	evil := tb.add(&kvApp{name: "evil"}, DefaultConfig())

	tb.call("store", put("x", "a"))
	fetch := tb.call("reader", wire.NewRequest("POST", "/fetch").WithForm("key", "x"))
	if !fetch.OK() {
		t.Fatalf("fetch: %+v", fetch)
	}
	rec, _, ok := tb.ctrls["reader"].Svc.Log.FindByCallRespID(findRespID(t, tb, "reader"))
	if !ok {
		t.Fatal("no call record")
	}
	_ = rec

	// evil crafts a replace_response for the reader's response to store.
	evil.enqueueSpoof(t, findRespID(t, tb, "reader"))
	evil.Flush()

	// The reader's cached value must be unchanged.
	v, ok := readCache(tb, "reader", "x")
	if !ok || v != "a" {
		t.Fatalf("spoofed replace_response took effect: %q %v", v, ok)
	}
	_ = strings.TrimSpace
}

// findRespID digs out the RespID of the reader's first upstream call.
func findRespID(t *testing.T, tb *testbed, svc string) string {
	t.Helper()
	for _, r := range tb.ctrls[svc].Svc.Log.All() {
		for _, c := range r.Calls {
			return c.RespID
		}
	}
	t.Fatal("no calls logged")
	return ""
}

// enqueueSpoof injects a forged replace_response into evil's outgoing queue
// aimed at the reader.
func (c *Controller) enqueueSpoof(t *testing.T, respID string) {
	t.Helper()
	c.enqueue([]warp.OutMsg{{
		Kind:        warp.OutReplaceResponse,
		RespID:      respID,
		Resp:        wire.NewResponse(200, "forged"),
		NotifierURL: "aire://reader/aire/notify",
		LocalReqID:  "evil-req-999",
	}}, traceCtx{})
}

func TestDropAbandonsMessage(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())
	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)
	tb.bus.SetOffline("b", true)
	a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	if a.QueueLen() != 1 {
		t.Fatalf("queue = %d", a.QueueLen())
	}
	pend := a.Pending()
	if err := a.Drop(pend[0].MsgID); err != nil {
		t.Fatal(err)
	}
	if a.QueueLen() != 0 {
		t.Fatal("drop did not remove the message")
	}
	if err := a.Drop("nope"); err == nil {
		t.Fatal("dropping unknown message must fail")
	}
	if err := a.Retry("nope", nil); err == nil {
		t.Fatal("retrying unknown message must fail")
	}
}

func TestStatsCounters(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())
	tb.call("a", put("keep", "v"))
	attack := tb.call("a", put("x", "evil"))
	tb.settle(10)
	a.ApplyLocal(warp.Action{Kind: warp.CancelReq, ReqID: attack.Header[wire.HdrRequestID]})
	tb.settle(10)

	st := a.Stats()
	if st.Requests == 0 || st.RepairsRun == 0 || st.MsgsQueued == 0 || st.MsgsDelivered == 0 {
		t.Fatalf("stats = %+v", st)
	}
	rr, tr, ro, to := a.RepairCounts()
	if rr == 0 || tr == 0 || ro < 0 || to <= 0 {
		t.Fatalf("repair counts = %d %d %d %d", rr, tr, ro, to)
	}
	if a.RepairDuration() <= 0 {
		t.Fatal("repair duration not recorded")
	}
}

func TestBlastRadius(t *testing.T) {
	tb := newTestbed()
	a := tb.add(&kvApp{name: "a", mirror: "b"}, DefaultConfig())
	tb.add(&kvApp{name: "b"}, DefaultConfig())
	attack := tb.call("a", put("x", "evil"))
	probe := tb.call("a", get("x"))
	tb.call("a", get("y")) // unrelated miss
	tb.settle(10)

	radius := a.BlastRadius(attack.Header[wire.HdrRequestID])
	found := map[string]bool{}
	for _, id := range radius {
		found[id] = true
	}
	if !found[probe.Header[wire.HdrRequestID]] {
		t.Fatalf("blast radius misses the reader: %v", radius)
	}
	var remote bool
	for _, id := range radius {
		if strings.HasPrefix(id, "b/") {
			remote = true
		}
	}
	if !remote {
		t.Fatalf("blast radius misses the remote call: %v", radius)
	}
}
